// Ablation: MPI-IO collective buffering (cb aggregators) on CosmoFlow's
// shared small-file reads. Disabling aggregation multiplies the number of
// PFS requests per file by the ranks-per-node; widening cb_buffer reduces
// server requests (§IV-D.1 aggregation guidance).
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/cosmoflow.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table(
      "Ablation — collective buffering (CosmoFlow, 8 nodes, reduced set)");
  table.set_header({"aggregators/node", "cb_buffer", "job s", "io s",
                    "PFS data ops"});

  workloads::CosmoflowParams P;
  P.nodes = 8;
  P.procs_per_node = 4;
  P.files = 1024;
  P.gpu_per_file = sim::seconds(0.2);

  struct Case {
    int agg;
    util::Bytes cb;
  };
  for (const Case c : {Case{1, 16 * util::kMiB}, Case{1, 4 * util::kMiB},
                       Case{0, 16 * util::kMiB}}) {
    advisor::RunConfig cfg;
    cfg.mpiio.aggregators_per_node = c.agg;
    cfg.mpiio.cb_buffer = c.cb;
    runtime::Simulation sim(cluster::lassen(P.nodes));
    auto out = workloads::run_with(sim, workloads::make_cosmoflow(P), cfg,
                                   analysis::Analyzer::Options{});
    char job[32];
    char io[32];
    std::snprintf(job, sizeof(job), "%.1f", out.job_seconds);
    std::snprintf(io, sizeof(io), "%.1f",
                  out.profile.io_time_fraction * out.job_seconds);
    table.add_row({std::to_string(c.agg), util::format_bytes(c.cb), job, io,
                   std::to_string(sim.pfs().counters().data_ops)});
  }
  table.print(std::cout);
  return 0;
}
