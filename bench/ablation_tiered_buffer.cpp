// Ablation: hierarchical buffering middleware (Hermes-style, §II-B) on a
// produce-then-consume pipeline — direct PFS vs write-back staging, and
// the eviction-policy configuration the paper lists for this middleware
// class (FIFO vs LRU under capacity pressure with a hot working set).
#include <cstdio>
#include <iostream>

#include "io/tiered_buffer.hpp"
#include "util/table.hpp"

namespace {

using namespace wasp;
using runtime::Proc;
using runtime::Simulation;
using sim::Task;

constexpr int kFiles = 12;
constexpr fs::Bytes kFileBytes = 64 * util::kMiB;
constexpr fs::Bytes kTransfer = 32 * util::kKiB;

/// Produce kFiles, then interleave hot-subset re-reads with fresh
/// production — the access mix where eviction policy matters.
Task<void> pipeline_direct(Simulation& s, std::uint16_t a) {
  Proc p(s, a, 0, 0);
  io::Posix posix(p);
  const auto ops = static_cast<std::uint32_t>(kFileBytes / kTransfer);
  int next = 0;
  for (int i = 0; i < kFiles; ++i, ++next) {
    auto f = co_await posix.open("/p/gpfs1/tb/" + std::to_string(next),
                                 io::OpenMode::kWrite);
    co_await posix.write(f, kTransfer, ops);
    co_await posix.close(f);
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) {  // hot subset
      auto f = co_await posix.open("/p/gpfs1/tb/" + std::to_string(i),
                                   io::OpenMode::kRead);
      co_await posix.read(f, kTransfer, ops);
      co_await posix.close(f);
    }
    for (int k = 0; k < 3; ++k, ++next) {  // streaming production
      auto f = co_await posix.open("/p/gpfs1/tb/" + std::to_string(next),
                                   io::OpenMode::kWrite);
      co_await posix.write(f, kTransfer, ops);
      co_await posix.close(f);
    }
  }
}

Task<void> pipeline_buffered(Simulation& s, std::uint16_t a,
                             io::TieredBuffer& tb) {
  Proc p(s, a, 0, 0);
  const auto ops = static_cast<std::uint32_t>(kFileBytes / kTransfer);
  int next = 0;
  for (int i = 0; i < kFiles; ++i, ++next) {
    auto f = co_await tb.open(p, "/p/gpfs1/tb/" + std::to_string(next),
                              io::OpenMode::kWrite);
    co_await tb.write(p, f, kTransfer, ops);
    co_await tb.close(p, f);
  }
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) {
      auto f = co_await tb.open(p, "/p/gpfs1/tb/" + std::to_string(i),
                                io::OpenMode::kRead);
      co_await tb.read(p, f, kTransfer, ops);
      co_await tb.close(p, f);
    }
    for (int k = 0; k < 3; ++k, ++next) {
      auto f = co_await tb.open(p, "/p/gpfs1/tb/" + std::to_string(next),
                                io::OpenMode::kWrite);
      co_await tb.write(p, f, kTransfer, ops);
      co_await tb.close(p, f);
    }
  }
  co_await tb.flush_all(p);
}

}  // namespace

int main() {
  util::TablePrinter table(
      "Ablation — hierarchical buffering (24 x 64MiB produce/consume, "
      "hot subset re-read 4x)");
  table.set_header({"configuration", "job s", "tier hits", "evictions",
                    "PFS data ops"});

  {
    Simulation sim(cluster::lassen(2));
    const auto app = sim.tracer().register_app("pipe");
    sim.pfs().set_client_cache_enabled(false);
    sim.engine().spawn(pipeline_direct(sim, app));
    sim.engine().run();
    char job[32];
    std::snprintf(job, sizeof(job), "%.2f",
                  sim::to_seconds(sim.engine().now()));
    table.add_row({"direct PFS", job, "-", "-",
                   std::to_string(sim.pfs().counters().data_ops)});
  }

  struct Case {
    const char* label;
    util::Bytes capacity;
    io::TieredBufferConfig::Eviction policy;
  };
  for (const Case c :
       {Case{"buffered, ample pool", 4 * util::kGiB,
             io::TieredBufferConfig::Eviction::kLru},
        Case{"buffered, tight pool, LRU", 512 * util::kMiB,
             io::TieredBufferConfig::Eviction::kLru},
        Case{"buffered, tight pool, FIFO", 512 * util::kMiB,
             io::TieredBufferConfig::Eviction::kFifo}}) {
    Simulation sim(cluster::lassen(2));
    sim.pfs().set_client_cache_enabled(false);
    io::TieredBufferConfig cfg;
    cfg.capacity_per_node = c.capacity;
    cfg.eviction = c.policy;
    io::TieredBuffer tb(sim, cfg);
    const auto app = sim.tracer().register_app("pipe");
    sim.engine().spawn(pipeline_buffered(sim, app, tb));
    sim.engine().run();
    char job[32];
    std::snprintf(job, sizeof(job), "%.2f",
                  sim::to_seconds(sim.engine().now()));
    table.add_row({c.label, job, std::to_string(tb.hits()),
                   std::to_string(tb.evictions()),
                   std::to_string(sim.pfs().counters().data_ops)});
  }
  table.print(std::cout);
  return 0;
}
