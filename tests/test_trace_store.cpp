// TraceStore backend contract: the spill-to-disk columnar store must serve
// the exact bytes the in-memory store serves — profiles byte-identical at
// every job count, with or without chunk compression — while keeping the
// resident set bounded by chunk_rows * (max_resident_chunks + cursors + 1):
// K cached/in-flight chunks, one buffer per concurrent cursor (a pin or an
// in-flight demand load), plus the one double-buffered prefetch load.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "profile_test_util.hpp"
#include "trace/log_io.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;
using trace::synthetic_records;

std::string spill_dir(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Simulate a test-scale Montage run (multi-app, shared + fpp files) and
/// leave the trace in the Simulation's tracer.
void populate(runtime::Simulation& sim) {
  workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
}

TEST(SpillStore, RoundTripsRowsThroughChunkFiles) {
  const auto records = synthetic_records(10007);

  analysis::SpillColumnStore store(
      {.dir = spill_dir("roundtrip.spill"),
       .chunk_rows = 100,
       .max_resident_chunks = 2});
  // Odd-sized appends so batch boundaries never line up with chunks.
  std::size_t pos = 0, batch = 1;
  while (pos < records.size()) {
    const std::size_t n = std::min(batch, records.size() - pos);
    store.append(std::span<const trace::Record>(records.data() + pos, n));
    pos += n;
    batch = batch % 7 + 1;
  }
  store.finalize();

  ASSERT_EQ(store.size(), records.size());
  EXPECT_EQ(store.spilled_chunks(), (records.size() - 1) / 100 + 1);
  EXPECT_EQ(store.num_chunks(), store.spilled_chunks());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(store.row(i) == records[i]) << "row " << i;
  }
  // A full sequential scan through row() keeps residency bounded by the
  // cap plus one transiently pinned chunk plus the prefetch double-buffer.
  EXPECT_LE(store.peak_resident_chunks(), 2u + 2u);
  EXPECT_GT(store.chunk_evictions(), 0u);
  // (No prefetch_issued assertion here: on a busy machine the demand loads
  // of a tight row() loop can win every race against the prefetch thread;
  // SequentialScanPrefetchesNextChunk covers prefetch deterministically.)
  const auto io = store.io_stats();
  EXPECT_GT(io.bytes_written, 0u);
  EXPECT_GT(io.bytes_read, 0u);
  // Compressed chunks must beat the raw WSPCHK01 footprint on this trace.
  EXPECT_LT(io.bytes_written, io.raw_bytes);
}

TEST(SpillStore, ProfileMatchesMemoryBackendAcrossJobCounts) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);
  const auto& records = sim.tracer().records();

  // Analysis grain deliberately misaligned with the storage chunking: the
  // map-reduce boundaries must not depend on how storage slices the trace.
  ASSERT_GT(records.size(), 100u);

  analysis::Analyzer::Options o1;
  o1.jobs = 1;
  o1.chunk_rows = 23;
  analysis::Analyzer::Options o8 = o1;
  o8.jobs = 8;

  const auto mem1 = analysis::Analyzer(o1).analyze(sim.tracer());
  const auto mem8 = analysis::Analyzer(o8).analyze(sim.tracer());
  expect_profiles_identical(mem1, mem8);

  const std::size_t kMaxResident = 3;
  {
    analysis::SpillColumnStore store({.dir = spill_dir("jobs1.spill"),
                                      .chunk_rows = 17,
                                      .max_resident_chunks = kMaxResident});
    store.append(records);
    store.finalize();
    ASSERT_GT(store.num_chunks(), kMaxResident);
    const auto spill1 = analysis::Analyzer(o1).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, spill1);
    // Acceptance bound: K cached/in-flight + 1 cursor + 1 prefetch buffer.
    EXPECT_LE(store.peak_resident_chunks(), kMaxResident + 1 + 1);
    EXPECT_GT(store.chunk_loads(), 0u);
  }
  {
    analysis::SpillColumnStore store({.dir = spill_dir("jobs8.spill"),
                                      .chunk_rows = 17,
                                      .max_resident_chunks = kMaxResident});
    store.append(records);
    store.finalize();
    const auto spill8 = analysis::Analyzer(o8).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, spill8);
    // W concurrent cursors can each keep one evicted chunk pinned, and the
    // prefetcher may hold one more in flight.
    EXPECT_LE(store.peak_resident_chunks(), kMaxResident + 8 + 1);
  }
  // Compression must not change the profile either, at any job count.
  {
    analysis::SpillColumnStore store({.dir = spill_dir("nocomp.spill"),
                                      .chunk_rows = 17,
                                      .max_resident_chunks = kMaxResident,
                                      .compress = false});
    store.append(records);
    store.finalize();
    const auto raw1 = analysis::Analyzer(o1).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, raw1);
    const auto raw8 = analysis::Analyzer(o8).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, raw8);
    // Raw WSPCHK01 stores exactly the widened column bytes.
    const auto io = store.io_stats();
    EXPECT_GE(io.bytes_written, io.raw_bytes);
  }
}

TEST(SpillStore, SingleResidentChunkForcesEvictionsButNotDivergence) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);

  analysis::Analyzer::Options opts;
  opts.jobs = 1;
  opts.chunk_rows = 29;
  const auto mem = analysis::Analyzer(opts).analyze(sim.tracer());

  analysis::SpillColumnStore store({.dir = spill_dir("evict.spill"),
                                    .chunk_rows = 16,
                                    .max_resident_chunks = 1});
  store.append(sim.tracer().records());
  store.finalize();
  const auto spill = analysis::Analyzer(opts).analyze(
      analysis::tracer_input(sim.tracer(), &store));
  expect_profiles_identical(mem, spill);

  // K=1 cursor=1 prefetch=1: the cap still bounds the cache itself, but a
  // pinned chunk plus the prefetch double-buffer can coexist with it.
  EXPECT_LE(store.peak_resident_chunks(), 1u + 1u + 1u);
  EXPECT_GT(store.chunk_evictions(), 0u);
  // The analyzer makes several passes; with one resident chunk every pass
  // re-loads, so loads must exceed the chunk count.
  EXPECT_GT(store.chunk_loads(), store.spilled_chunks());
}

TEST(SpillStore, TracerMidRunFlushMatchesUnspilledRun) {
  const auto make = [] {
    return workloads::make_montage_mpi(workloads::MontageMpiParams::test());
  };
  analysis::Analyzer::Options opts;
  opts.jobs = 2;
  opts.chunk_rows = 41;

  runtime::Simulation mem_sim(cluster::lassen(4));
  const auto mem =
      workloads::run_with(mem_sim, make(), advisor::RunConfig{}, opts);
  const std::size_t n = mem_sim.tracer().records().size();
  ASSERT_GT(n, 100u);

  runtime::SpillPolicy policy;
  policy.dir = spill_dir("midrun");
  policy.flush_rows = 32;  // tiny, so the tracer flushes many times mid-run
  policy.chunk_rows = 32;
  policy.max_resident_chunks = 2;
  runtime::Simulation spill_sim(cluster::lassen(4));
  const auto spill = workloads::run_spilled(spill_sim, make(),
                                            advisor::RunConfig{}, opts,
                                            policy, "montage-midrun");

  EXPECT_GT(spill_sim.tracer().spilled_records(), 0u);
  EXPECT_LT(spill_sim.tracer().records().size(), n);
  EXPECT_EQ(spill_sim.tracer().total_records(), n);
  EXPECT_EQ(mem.job_seconds, spill.job_seconds);
  EXPECT_EQ(mem.engine_events, spill.engine_events);
  expect_profiles_identical(mem.profile, spill.profile);
}

TEST(SpillStore, RunManyHonorsRunnerSpillPolicy) {
  std::vector<workloads::Scenario> scenarios;
  for (int nodes : {2, 4}) {
    workloads::Scenario s;
    s.name = "hacc-" + std::to_string(nodes);
    s.spec = cluster::lassen(nodes);
    s.make = [] { return workloads::make_hacc(workloads::HaccParams::test()); };
    scenarios.push_back(std::move(s));
  }
  const auto mem = workloads::run_many(scenarios, 2);

  runtime::SpillPolicy policy;
  policy.dir = spill_dir("runmany");
  policy.flush_rows = 64;
  policy.chunk_rows = 64;
  runtime::ScenarioRunner runner(2);
  runner.set_spill(policy);
  const auto spill = workloads::run_many(scenarios, runner);

  ASSERT_EQ(spill.size(), mem.size());
  for (std::size_t i = 0; i < mem.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(mem[i].job_seconds, spill[i].job_seconds);
    expect_profiles_identical(mem[i].profile, spill[i].profile);
  }
}

TEST(SpillStore, OfflineLogStreamsThroughAuxColumns) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);
  const std::string path =
      std::string(::testing::TempDir()) + "/offline_spill.wtrc";
  trace::write_log(path, sim.tracer());

  analysis::Analyzer::Options opts;
  opts.jobs = 4;
  opts.chunk_rows = 37;
  const auto baseline =
      analysis::Analyzer(opts).analyze(trace::read_log(path));

  // The wasp_analyze --backend spill path: stream the log into an aux
  // store, then analyze through it.
  trace::LogReader reader(path);
  const auto& h = reader.header();
  analysis::SpillColumnStore store({.dir = spill_dir("offline.spill"),
                                    .chunk_rows = 19,
                                    .max_resident_chunks = 4});
  std::vector<trace::Record> batch;
  std::vector<std::uint32_t> path_idx;
  std::vector<std::uint64_t> file_sizes;
  while (reader.remaining() > 0) {
    batch.clear();
    path_idx.clear();
    file_sizes.clear();
    ASSERT_GT(reader.next_chunk(50, batch, path_idx, file_sizes), 0u);
    store.append(batch, path_idx, file_sizes);
  }
  store.finalize();
  ASSERT_TRUE(store.has_aux());
  ASSERT_EQ(store.size(), h.num_records);

  analysis::TraceInput input;
  input.store = &store;
  input.app_names = h.apps;
  input.path_at = [&](std::size_t i) {
    return h.path_table[store.path_idx_at(i)];
  };
  input.size_at = [&](std::size_t i) { return store.file_size_at(i); };
  input.fs_shared = [&](std::int16_t fs) {
    return fs < 0 || static_cast<std::size_t>(fs) >= h.fs_shared.size() ||
           h.fs_shared[fs];
  };
  expect_profiles_identical(baseline,
                            analysis::Analyzer(opts).analyze(input));
  std::remove(path.c_str());
}

TEST(SpillStore, MisuseFailsLoudly) {
  const std::vector<trace::Record> one(1);
  {
    analysis::SpillColumnStore store({.dir = spill_dir("misuse1.spill")});
    store.append(one);
    EXPECT_THROW(store.chunk(0), util::SimError);  // not finalized
    store.finalize();
    EXPECT_THROW(store.append(one), util::SimError);  // sealed
  }
  {
    analysis::SpillColumnStore store({.dir = spill_dir("misuse2.spill")});
    const std::vector<std::uint32_t> idx(1, 0);
    const std::vector<std::uint64_t> sz(1, 0);
    store.append(one, idx, sz);  // decides aux
    EXPECT_THROW(store.append(one), util::SimError);  // aux mixing
  }
}

// Regression: a chunk that fails validation mid-load must not decrement the
// residency counter it never incremented (the ChunkData destructor used to
// decrement unconditionally, so a corrupt file would underflow the count and
// wreck the eviction bound for the rest of the run).
TEST(SpillStore, CorruptChunkFailsLoudlyWithoutResidencyUnderflow) {
  const auto records = synthetic_records(350);
  analysis::SpillColumnStore store({.dir = spill_dir("corrupt.spill"),
                                    .chunk_rows = 100,
                                    .max_resident_chunks = 2,
                                    .compress = true,
                                    .prefetch = false});
  store.append(records);
  store.finalize();
  ASSERT_EQ(store.spilled_chunks(), 4u);

  // Truncate a middle chunk to a few header bytes.
  const std::string victim = store.chunk_file_path(1);
  {
    std::ifstream in(victim, std::ios::binary);
    ASSERT_TRUE(in.good());
  }
  std::filesystem::resize_file(victim, 12);

  EXPECT_THROW(store.row(150), util::SimError);
  // The failed load must leave no phantom resident chunk behind.
  EXPECT_EQ(store.resident_chunks(), 0u);
  // And the failure is not sticky for other chunks...
  EXPECT_TRUE(store.row(0) == records[0]);
  EXPECT_TRUE(store.row(250) == records[250]);
  // ...while re-demanding the corrupt chunk still throws (not cached).
  EXPECT_THROW(store.row(150), util::SimError);
  EXPECT_LE(store.resident_chunks(), 2u);
}

// Regression: every chunk except the last must hold exactly chunk_rows rows.
// A short non-final chunk used to load "successfully" and silently misalign
// every row index after it (view_of computes base = chunk_index * chunk_rows).
TEST(SpillStore, ShortNonFinalChunkRejected) {
  const auto records = synthetic_records(250);  // chunks of 100, 100, 50
  analysis::SpillColumnStore store({.dir = spill_dir("shortchunk.spill"),
                                    .chunk_rows = 100,
                                    .max_resident_chunks = 4,
                                    .compress = true,
                                    .prefetch = false});
  store.append(records);
  store.finalize();
  ASSERT_EQ(store.spilled_chunks(), 3u);

  // Overwrite the middle chunk with the (valid but short) final chunk file.
  std::filesystem::copy_file(store.chunk_file_path(2),
                             store.chunk_file_path(1),
                             std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(store.row(100), util::SimError);
  // Overwrite the final chunk with a full-size one: also a count mismatch.
  std::filesystem::copy_file(store.chunk_file_path(0),
                             store.chunk_file_path(2),
                             std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(store.row(200), util::SimError);
  // Chunk 0 is untouched and still loads.
  EXPECT_TRUE(store.row(0) == records[0]);
}

// Regression: two stores pointed at the same --spill-dir used to write the
// same chunk_000000.wspc paths and corrupt each other. Each instance now
// gets a unique subdirectory.
TEST(SpillStore, TwoStoresShareOneSpillDirWithoutCollision) {
  const std::string dir = spill_dir("shared.spill");
  const auto a_records = synthetic_records(1009);
  auto b_records = synthetic_records(1013);
  for (auto& r : b_records) r.offset += 7;  // make the traces distinguishable

  auto a = std::make_unique<analysis::SpillColumnStore>(
      analysis::SpillColumnStore::Options{
          .dir = dir, .chunk_rows = 64, .max_resident_chunks = 2});
  analysis::SpillColumnStore b({.dir = dir,
                                .chunk_rows = 64,
                                .max_resident_chunks = 2});
  ASSERT_NE(a->spill_dir(), b.spill_dir());

  // Interleave appends, then read both back in full.
  std::size_t pa = 0, pb = 0;
  while (pa < a_records.size() || pb < b_records.size()) {
    if (pa < a_records.size()) {
      const std::size_t n = std::min<std::size_t>(33, a_records.size() - pa);
      a->append(std::span<const trace::Record>(a_records.data() + pa, n));
      pa += n;
    }
    if (pb < b_records.size()) {
      const std::size_t n = std::min<std::size_t>(41, b_records.size() - pb);
      b.append(std::span<const trace::Record>(b_records.data() + pb, n));
      pb += n;
    }
  }
  a->finalize();
  b.finalize();
  for (std::size_t i = 0; i < a_records.size(); ++i) {
    ASSERT_TRUE(a->row(i) == a_records[i]) << "store a row " << i;
  }
  // Destroying one store must not take the other's chunk files with it.
  a.reset();
  for (std::size_t i = 0; i < b_records.size(); ++i) {
    ASSERT_TRUE(b.row(i) == b_records[i]) << "store b row " << i;
  }
}

// Property: the same trace written as compressed WSPCHK02 and raw WSPCHK01
// decodes to identical columns, and the compressed files are smaller.
TEST(SpillStore, CompressedAndRawChunksDecodeIdentically) {
  const auto records = synthetic_records(5003);
  analysis::SpillColumnStore v2({.dir = spill_dir("prop_v2.spill"),
                                 .chunk_rows = 128,
                                 .max_resident_chunks = 4,
                                 .compress = true});
  analysis::SpillColumnStore v1({.dir = spill_dir("prop_v1.spill"),
                                 .chunk_rows = 128,
                                 .max_resident_chunks = 4,
                                 .compress = false});
  v2.append(records);
  v1.append(records);
  v2.finalize();
  v1.finalize();

  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace::Record r2 = v2.row(i);
    ASSERT_TRUE(r2 == v1.row(i)) << "row " << i;
    ASSERT_TRUE(r2 == records[i]) << "row " << i;
  }
  const auto io2 = v2.io_stats();
  const auto io1 = v1.io_stats();
  EXPECT_EQ(io2.raw_bytes, io1.raw_bytes);
  EXPECT_LT(io2.bytes_written, io1.bytes_written);
  // Monotone time columns should delta-compress dramatically.
  for (const auto& c : io2.columns) {
    if (std::string(c.name) == "tstart") {
      EXPECT_LT(c.stored_bytes * 2, c.raw_bytes);
    }
  }
}

// The background prefetcher must turn a sequential chunk scan into cache
// hits. Polling chunk_cached() makes the assertion deterministic even on a
// single-CPU machine.
TEST(SpillStore, SequentialScanPrefetchesNextChunk) {
  const auto records = synthetic_records(20 * 100);
  analysis::SpillColumnStore store({.dir = spill_dir("prefetch.spill"),
                                    .chunk_rows = 100,
                                    .max_resident_chunks = 2});
  store.append(records);
  store.finalize();
  ASSERT_EQ(store.num_chunks(), 20u);

  const auto wait_cached = [&](std::size_t index) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!store.chunk_cached(index) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return store.chunk_cached(index);
  };

  for (std::size_t k = 0; k + 1 < store.num_chunks(); ++k) {
    auto h = store.chunk(k);  // schedules prefetch of k+1
    ASSERT_EQ(h.cols.rows, 100u);
    ASSERT_TRUE(wait_cached(k + 1)) << "prefetch of chunk " << k + 1;
  }
  const auto io = store.io_stats();
  EXPECT_GT(io.prefetch_issued, 0u);
  // Every chunk after the first was already resident when demanded.
  EXPECT_GE(io.prefetch_hits, store.num_chunks() - 2);
  EXPECT_LE(store.peak_resident_chunks(), 2u + 1u + 1u);
}

// Many cursors hammering a one-chunk cache: exercises the off-lock loader,
// the in-flight load sharing, and eviction under contention. Runs under the
// "sanitize" label in the WASP_SANITIZE=thread build.
TEST(SpillStoreStress, ConcurrentCursorsTinyCache) {
  const auto records = synthetic_records(10007);
  analysis::SpillColumnStore store({.dir = spill_dir("stress.spill"),
                                    .chunk_rows = 64,
                                    .max_resident_chunks = 1});
  store.append(records);
  store.finalize();

  constexpr int kThreads = 8;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      analysis::Cursor cs(store);
      // Stagger starting offsets so threads fight over different chunks.
      const std::size_t start = static_cast<std::size_t>(t) * 1237;
      for (std::size_t k = 0; k < records.size(); ++k) {
        const std::size_t i = (start + k) % records.size();
        if (cs.op(i) != records[i].op || cs.size_col(i) != records[i].size ||
            cs.tstart(i) != records[i].tstart ||
            cs.offset(i) != records[i].offset) {
          errors[t] = "row mismatch at " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
  EXPECT_LE(store.peak_resident_chunks(),
            1u + static_cast<std::size_t>(kThreads) + 1u);
  EXPECT_GT(store.chunk_evictions(), 0u);
}

// Scale test (off by default; opt in with `ctest -C scale -L scale` or
// WASP_SCALE=1): a trace 4x larger than the cache's row capacity must scan
// and analyze with residency bounded and the prefetcher doing real work.
TEST(SpillScale, LargerThanCacheBoundedScan) {
  if (std::getenv("WASP_SCALE") == nullptr) {
    GTEST_SKIP() << "set WASP_SCALE=1 (or ctest -C scale -L scale) to run";
  }
  constexpr std::size_t kChunkRows = 8192;
  constexpr std::size_t kMaxResident = 4;
  const std::size_t rows = 4 * kMaxResident * kChunkRows;
  const auto records = synthetic_records(rows);

  analysis::SpillColumnStore store({.dir = spill_dir("scale.spill"),
                                    .chunk_rows = kChunkRows,
                                    .max_resident_chunks = kMaxResident});
  store.append(records);
  store.finalize();
  ASSERT_GE(store.num_chunks(), 4 * kMaxResident);

  // Sequential cursor scan over everything.
  analysis::Cursor cs(store);
  std::uint64_t checksum = 0, expected = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    checksum += cs.offset(i) + cs.tstart(i);
    expected += records[i].offset + records[i].tstart;
  }
  EXPECT_EQ(checksum, expected);

  const auto io = store.io_stats();
  EXPECT_GT(io.prefetch_issued, 0u);
  EXPECT_GT(io.prefetch_hits, 0u);
  EXPECT_LT(io.bytes_written, io.raw_bytes);
  // Peak residency stays bounded: K + 1 cursor + 1 prefetch buffer.
  EXPECT_LE(store.peak_resident_chunks(), kMaxResident + 1 + 1);
  EXPECT_GT(store.chunk_evictions(), 0u);
}

}  // namespace
}  // namespace wasp
