// TraceStore backend contract: the spill-to-disk columnar store must serve
// the exact bytes the in-memory store serves — profiles byte-identical at
// every job count — while keeping the resident set bounded by
// chunk_rows * max_resident_chunks (plus one pinned chunk per extra
// concurrent cursor).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "profile_test_util.hpp"
#include "trace/log_io.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

std::string spill_dir(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Simulate a test-scale Montage run (multi-app, shared + fpp files) and
/// leave the trace in the Simulation's tracer.
void populate(runtime::Simulation& sim) {
  workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
}

/// Deterministic synthetic trace — big enough to span many chunks, with
/// every column varying so a transposition bug can't hide.
std::vector<trace::Record> synthetic_records(std::size_t n) {
  std::vector<trace::Record> records(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = records[i];
    r.app = static_cast<std::uint16_t>(next() % 5);
    r.rank = static_cast<std::int32_t>(next() % 64);
    r.node = static_cast<std::int32_t>(next() % 8);
    r.iface = static_cast<trace::Iface>(next() % 3);
    r.op = static_cast<trace::Op>(next() % 8);
    r.file = {static_cast<std::int16_t>(next() % 2),
              static_cast<fs::FileId>(next() % 97)};
    r.offset = next() % (1ull << 40);
    r.size = next() % (1ull << 22);
    r.count = static_cast<std::uint32_t>(next() % 1000);
    r.tstart = next() % (1ull << 50);
    r.tend = r.tstart + next() % (1ull << 30);
  }
  return records;
}

TEST(SpillStore, RoundTripsRowsThroughChunkFiles) {
  const auto records = synthetic_records(10007);

  analysis::SpillColumnStore store(
      {.dir = spill_dir("roundtrip.spill"),
       .chunk_rows = 100,
       .max_resident_chunks = 2});
  // Odd-sized appends so batch boundaries never line up with chunks.
  std::size_t pos = 0, batch = 1;
  while (pos < records.size()) {
    const std::size_t n = std::min(batch, records.size() - pos);
    store.append(std::span<const trace::Record>(records.data() + pos, n));
    pos += n;
    batch = batch % 7 + 1;
  }
  store.finalize();

  ASSERT_EQ(store.size(), records.size());
  EXPECT_EQ(store.spilled_chunks(), (records.size() - 1) / 100 + 1);
  EXPECT_EQ(store.num_chunks(), store.spilled_chunks());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(store.row(i) == records[i]) << "row " << i;
  }
  // A full sequential scan through row() keeps residency at the cap.
  EXPECT_LE(store.peak_resident_chunks(), 2u);
  EXPECT_GT(store.chunk_evictions(), 0u);
}

TEST(SpillStore, ProfileMatchesMemoryBackendAcrossJobCounts) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);
  const auto& records = sim.tracer().records();

  // Analysis grain deliberately misaligned with the storage chunking: the
  // map-reduce boundaries must not depend on how storage slices the trace.
  ASSERT_GT(records.size(), 100u);

  analysis::Analyzer::Options o1;
  o1.jobs = 1;
  o1.chunk_rows = 23;
  analysis::Analyzer::Options o8 = o1;
  o8.jobs = 8;

  const auto mem1 = analysis::Analyzer(o1).analyze(sim.tracer());
  const auto mem8 = analysis::Analyzer(o8).analyze(sim.tracer());
  expect_profiles_identical(mem1, mem8);

  const std::size_t kMaxResident = 3;
  {
    analysis::SpillColumnStore store({.dir = spill_dir("jobs1.spill"),
                                      .chunk_rows = 17,
                                      .max_resident_chunks = kMaxResident});
    store.append(records);
    store.finalize();
    ASSERT_GT(store.num_chunks(), kMaxResident);
    const auto spill1 = analysis::Analyzer(o1).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, spill1);
    // Acceptance bound: one cursor at a time -> peak resident rows <=
    // chunk_rows * max_resident_chunks exactly.
    EXPECT_LE(store.peak_resident_chunks(), kMaxResident);
    EXPECT_GT(store.chunk_loads(), 0u);
  }
  {
    analysis::SpillColumnStore store({.dir = spill_dir("jobs8.spill"),
                                      .chunk_rows = 17,
                                      .max_resident_chunks = kMaxResident});
    store.append(records);
    store.finalize();
    const auto spill8 = analysis::Analyzer(o8).analyze(
        analysis::tracer_input(sim.tracer(), &store));
    expect_profiles_identical(mem1, spill8);
    // W concurrent cursors can each keep one evicted chunk pinned.
    EXPECT_LE(store.peak_resident_chunks(), kMaxResident + 8 - 1);
  }
}

TEST(SpillStore, SingleResidentChunkForcesEvictionsButNotDivergence) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);

  analysis::Analyzer::Options opts;
  opts.jobs = 1;
  opts.chunk_rows = 29;
  const auto mem = analysis::Analyzer(opts).analyze(sim.tracer());

  analysis::SpillColumnStore store({.dir = spill_dir("evict.spill"),
                                    .chunk_rows = 16,
                                    .max_resident_chunks = 1});
  store.append(sim.tracer().records());
  store.finalize();
  const auto spill = analysis::Analyzer(opts).analyze(
      analysis::tracer_input(sim.tracer(), &store));
  expect_profiles_identical(mem, spill);

  EXPECT_LE(store.peak_resident_chunks(), 1u);
  EXPECT_GT(store.chunk_evictions(), 0u);
  // The analyzer makes several passes; with one resident chunk every pass
  // re-loads, so loads must exceed the chunk count.
  EXPECT_GT(store.chunk_loads(), store.spilled_chunks());
}

TEST(SpillStore, TracerMidRunFlushMatchesUnspilledRun) {
  const auto make = [] {
    return workloads::make_montage_mpi(workloads::MontageMpiParams::test());
  };
  analysis::Analyzer::Options opts;
  opts.jobs = 2;
  opts.chunk_rows = 41;

  runtime::Simulation mem_sim(cluster::lassen(4));
  const auto mem =
      workloads::run_with(mem_sim, make(), advisor::RunConfig{}, opts);
  const std::size_t n = mem_sim.tracer().records().size();
  ASSERT_GT(n, 100u);

  runtime::SpillPolicy policy;
  policy.dir = spill_dir("midrun");
  policy.flush_rows = 32;  // tiny, so the tracer flushes many times mid-run
  policy.chunk_rows = 32;
  policy.max_resident_chunks = 2;
  runtime::Simulation spill_sim(cluster::lassen(4));
  const auto spill = workloads::run_spilled(spill_sim, make(),
                                            advisor::RunConfig{}, opts,
                                            policy, "montage-midrun");

  EXPECT_GT(spill_sim.tracer().spilled_records(), 0u);
  EXPECT_LT(spill_sim.tracer().records().size(), n);
  EXPECT_EQ(spill_sim.tracer().total_records(), n);
  EXPECT_EQ(mem.job_seconds, spill.job_seconds);
  EXPECT_EQ(mem.engine_events, spill.engine_events);
  expect_profiles_identical(mem.profile, spill.profile);
}

TEST(SpillStore, RunManyHonorsRunnerSpillPolicy) {
  std::vector<workloads::Scenario> scenarios;
  for (int nodes : {2, 4}) {
    workloads::Scenario s;
    s.name = "hacc-" + std::to_string(nodes);
    s.spec = cluster::lassen(nodes);
    s.make = [] { return workloads::make_hacc(workloads::HaccParams::test()); };
    scenarios.push_back(std::move(s));
  }
  const auto mem = workloads::run_many(scenarios, 2);

  runtime::SpillPolicy policy;
  policy.dir = spill_dir("runmany");
  policy.flush_rows = 64;
  policy.chunk_rows = 64;
  runtime::ScenarioRunner runner(2);
  runner.set_spill(policy);
  const auto spill = workloads::run_many(scenarios, runner);

  ASSERT_EQ(spill.size(), mem.size());
  for (std::size_t i = 0; i < mem.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(mem[i].job_seconds, spill[i].job_seconds);
    expect_profiles_identical(mem[i].profile, spill[i].profile);
  }
}

TEST(SpillStore, OfflineLogStreamsThroughAuxColumns) {
  runtime::Simulation sim(cluster::lassen(4));
  populate(sim);
  const std::string path =
      std::string(::testing::TempDir()) + "/offline_spill.wtrc";
  trace::write_log(path, sim.tracer());

  analysis::Analyzer::Options opts;
  opts.jobs = 4;
  opts.chunk_rows = 37;
  const auto baseline =
      analysis::Analyzer(opts).analyze(trace::read_log(path));

  // The wasp_analyze --backend spill path: stream the log into an aux
  // store, then analyze through it.
  trace::LogReader reader(path);
  const auto& h = reader.header();
  analysis::SpillColumnStore store({.dir = spill_dir("offline.spill"),
                                    .chunk_rows = 19,
                                    .max_resident_chunks = 4});
  std::vector<trace::Record> batch;
  std::vector<std::uint32_t> path_idx;
  std::vector<std::uint64_t> file_sizes;
  while (reader.remaining() > 0) {
    batch.clear();
    path_idx.clear();
    file_sizes.clear();
    ASSERT_GT(reader.next_chunk(50, batch, path_idx, file_sizes), 0u);
    store.append(batch, path_idx, file_sizes);
  }
  store.finalize();
  ASSERT_TRUE(store.has_aux());
  ASSERT_EQ(store.size(), h.num_records);

  analysis::TraceInput input;
  input.store = &store;
  input.app_names = h.apps;
  input.path_at = [&](std::size_t i) {
    return h.path_table[store.path_idx_at(i)];
  };
  input.size_at = [&](std::size_t i) { return store.file_size_at(i); };
  input.fs_shared = [&](std::int16_t fs) {
    return fs < 0 || static_cast<std::size_t>(fs) >= h.fs_shared.size() ||
           h.fs_shared[fs];
  };
  expect_profiles_identical(baseline,
                            analysis::Analyzer(opts).analyze(input));
  std::remove(path.c_str());
}

TEST(SpillStore, MisuseFailsLoudly) {
  const std::vector<trace::Record> one(1);
  {
    analysis::SpillColumnStore store({.dir = spill_dir("misuse1.spill")});
    store.append(one);
    EXPECT_THROW(store.chunk(0), util::SimError);  // not finalized
    store.finalize();
    EXPECT_THROW(store.append(one), util::SimError);  // sealed
  }
  {
    analysis::SpillColumnStore store({.dir = spill_dir("misuse2.spill")});
    const std::vector<std::uint32_t> idx(1, 0);
    const std::vector<std::uint64_t> sz(1, 0);
    store.append(one, idx, sz);  // decides aux
    EXPECT_THROW(store.append(one), util::SimError);  // aux mixing
  }
}

}  // namespace
}  // namespace wasp
