// Simulated MPI communicator tests.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace wasp::mpi {
namespace {

using sim::Engine;
using sim::Task;

TEST(Comm, TopologyQueries) {
  Engine eng;
  Comm comm(eng, {0, 0, 1, 1, 2, 2}, NetParams{});
  EXPECT_EQ(comm.size(), 6);
  EXPECT_EQ(comm.num_nodes(), 3);
  EXPECT_EQ(comm.node_of(3), 1);
  EXPECT_EQ(comm.node_leader(3), 2);
  EXPECT_TRUE(comm.is_node_leader(2));
  EXPECT_FALSE(comm.is_node_leader(3));
  EXPECT_EQ(comm.ranks_on_node(2), (std::vector<int>{4, 5}));
}

TEST(Comm, BarrierReleasesAllAtLastArrival) {
  Engine eng;
  Comm comm(eng, {0, 0, 1, 1}, NetParams{12.5e9, 1 * sim::kUs});
  std::vector<sim::Time> released;
  auto rank_prog = [](Engine& e, Comm& c, int rank,
                      std::vector<sim::Time>& out) -> Task<void> {
    co_await sim::Delay(e, static_cast<sim::Time>(rank) * sim::kMs);
    co_await c.barrier();
    out.push_back(e.now());
  };
  for (int r = 0; r < 4; ++r) eng.spawn(rank_prog(eng, comm, r, released));
  eng.run();
  ASSERT_EQ(released.size(), 4u);
  // Everyone releases at last arrival (3ms) + log2(4)*1us tree latency.
  for (auto t : released) EXPECT_EQ(t, 3 * sim::kMs + 2 * sim::kUs);
}

TEST(Comm, BarrierGenerationsDoNotMix) {
  Engine eng;
  Comm comm(eng, {0, 0}, NetParams{});
  int phase_counter = 0;
  auto prog = [](Comm& c, int& counter) -> Task<void> {
    co_await c.barrier();
    ++counter;
    co_await c.barrier();
    ++counter;
  };
  eng.spawn(prog(comm, phase_counter));
  eng.spawn(prog(comm, phase_counter));
  eng.run();
  EXPECT_EQ(phase_counter, 4);
}

TEST(Comm, BcastChargesNonRootsBandwidth) {
  Engine eng;
  Comm comm(eng, {0, 1}, NetParams{1e9, 0});
  std::vector<sim::Time> done(2);
  auto prog = [](Engine& e, Comm& c, int rank,
                 std::vector<sim::Time>& out) -> Task<void> {
    co_await c.bcast(rank, 0, 1'000'000'000ULL);  // 1GB over 1GB/s
    out[static_cast<std::size_t>(rank)] = e.now();
  };
  eng.spawn(prog(eng, comm, 0, done));
  eng.spawn(prog(eng, comm, 1, done));
  eng.run();
  EXPECT_LT(done[0], done[1]);
  EXPECT_NEAR(sim::to_seconds(done[1]), 1.0, 1e-3);
}

TEST(Comm, SendRecvDeliversInOrder) {
  Engine eng;
  Comm comm(eng, {0, 1}, NetParams{1e12, 0});
  std::vector<int> got;
  auto sender = [](Engine& e, Comm& c) -> Task<void> {
    co_await c.send(0, 1, 10, /*tag=*/7);
    co_await sim::Delay(e, 1 * sim::kMs);
    co_await c.send(0, 1, 20, 7);
  };
  auto receiver = [](Comm& c, std::vector<int>& out) -> Task<void> {
    auto a = co_await c.recv(1, /*from=*/0, 7);
    out.push_back(static_cast<int>(a.bytes));
    auto b = co_await c.recv(1, 0, 7);
    out.push_back(static_cast<int>(b.bytes));
  };
  eng.spawn(sender(eng, comm));
  eng.spawn(receiver(comm, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
}

TEST(Comm, RecvBlocksUntilSendArrives) {
  Engine eng;
  Comm comm(eng, {0, 1}, NetParams{1e12, 0});
  sim::Time recv_done = 0;
  auto sender = [](Engine& e, Comm& c) -> Task<void> {
    co_await sim::Delay(e, 5 * sim::kSec);
    co_await c.send(0, 1, 1, 0);
  };
  auto receiver = [](Engine& e, Comm& c, sim::Time& out) -> Task<void> {
    co_await c.recv(1);
    out = e.now();
  };
  eng.spawn(receiver(eng, comm, recv_done));
  eng.spawn(sender(eng, comm));
  eng.run();
  EXPECT_GE(recv_done, 5 * sim::kSec);
}

TEST(Comm, RecvWildcardMatchesAnySender) {
  Engine eng;
  Comm comm(eng, {0, 1, 2}, NetParams{1e12, 0});
  int from = -2;
  auto sender = [](Comm& c, int rank) -> Task<void> {
    co_await c.send(rank, 0, 1, 0);
  };
  auto receiver = [](Comm& c, int& out) -> Task<void> {
    auto m = co_await c.recv(0, -1, 0);
    out = m.from;
  };
  eng.spawn(receiver(comm, from));
  eng.spawn(sender(comm, 2));
  eng.run();
  EXPECT_EQ(from, 2);
}

TEST(Comm, PendingCountsQueuedMessages) {
  Engine eng;
  Comm comm(eng, {0, 1}, NetParams{});
  auto sender = [](Comm& c) -> Task<void> {
    co_await c.send(0, 1, 1, 3);
    co_await c.send(0, 1, 1, 3);
  };
  eng.spawn(sender(comm));
  eng.run();
  EXPECT_EQ(comm.pending(1, 3), 2u);
  EXPECT_EQ(comm.pending(1, 0), 0u);
}

TEST(Comm, AllreduceSynchronizes) {
  Engine eng;
  Comm comm(eng, {0, 1, 2, 3}, NetParams{1e9, 1 * sim::kUs});
  std::vector<sim::Time> done;
  auto prog = [](Engine& e, Comm& c, int rank,
                 std::vector<sim::Time>& out) -> Task<void> {
    co_await sim::Delay(e, static_cast<sim::Time>(rank) * sim::kMs);
    co_await c.allreduce(1024);
    out.push_back(e.now());
  };
  for (int r = 0; r < 4; ++r) eng.spawn(prog(eng, comm, r, done));
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  for (auto t : done) EXPECT_GE(t, 3 * sim::kMs);
}

}  // namespace
}  // namespace wasp::mpi
