// The reporting/regression core behind tools/wasp_report: manifest
// loading (including malformed-input diagnostics), the diff tolerance
// bands at their edges, Chrome-trace span aggregation, bench-results
// schema v2/v3 compatibility, and the check verdict + exit-code
// contract the CI gate relies on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/manifest.hpp"
#include "obs/report.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace wasp {
namespace {

namespace rep = obs::report;

std::string write_tmp(const std::string& name, const std::string& text) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::ofstream os(path);
  os << text;
  return path;
}

// --- util::json -----------------------------------------------------------

TEST(JsonReader, ParsesScalarsContainersAndEscapes) {
  const auto v = util::json::parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\\\"y\n", "o": {}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.num_or("a", 0), 1.5);
  const auto* b = v.get("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->arr.size(), 3u);
  EXPECT_TRUE(b->arr[0].boolean);
  EXPECT_EQ(v.str_or("s", ""), "x\\\"y\n");
  EXPECT_TRUE(v.get("o")->is_object());
}

TEST(JsonReader, ReportsByteOffsetOnMalformedInput) {
  try {
    util::json::parse("{\"a\": 1, }");
    FAIL() << "expected a parse error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(util::json::parse(""), std::exception);
  EXPECT_THROW(util::json::parse("{\"a\": 1} trailing"), std::exception);
  EXPECT_THROW(util::json::parse_file("/nonexistent/manifest.json"),
               std::exception);
}

// --- load_manifest --------------------------------------------------------

TEST(ReportManifest, RoundTripsThroughWriteJson) {
  obs::RunManifest m;
  m.tool = "unit";
  m.git_sha = "unknown";
  m.timestamp = "2026-08-09T00:00:00Z";
  m.hardware_threads = 8;
  m.jobs = 3;
  m.backend = "spill";
  m.wall_seconds = 1.25;
  m.spans.push_back({"engine.run", 2, 900, 700});
  std::ostringstream os;
  m.write_json(os);
  const std::string path = write_tmp("roundtrip.manifest.json", os.str());

  const rep::ManifestView v = rep::load_manifest(path);
  EXPECT_EQ(v.tool, "unit");
  EXPECT_EQ(v.backend, "spill");
  EXPECT_EQ(v.jobs, 3);
  EXPECT_EQ(v.hardware_threads, 8u);
  EXPECT_EQ(v.wall_seconds, 1.25);
  ASSERT_EQ(v.spans.size(), 1u);
  EXPECT_EQ(v.spans[0].name, "engine.run");
  EXPECT_EQ(v.spans[0].self_ns, 700u);
  EXPECT_EQ(v.metrics.at("span.engine.run.total_ns"), 900.0);
  EXPECT_EQ(v.metrics.at("wall_seconds"), 1.25);
}

TEST(ReportManifest, DiagnosesMalformedDocuments) {
  const auto expect_error = [](const std::string& path,
                               const std::string& needle) {
    try {
      rep::load_manifest(path);
      FAIL() << "expected SimError for " << path;
    } catch (const util::SimError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error(write_tmp("m_noschema.json", "{}"), "schema");
  expect_error(write_tmp("m_badschema.json",
                         R"({"schema": "wasp-bench-results-v3"})"),
               "unsupported schema");
  expect_error(
      write_tmp("m_nocounters.json",
                R"({"schema": "wasp-run-manifest-v1", "spans": []})"),
      "counters");
  expect_error(write_tmp("m_badspan.json",
                         R"({"schema": "wasp-run-manifest-v1",
                             "counters": {}, "histograms": {},
                             "spans": [{"count": 1}]})"),
               "span");
  // Parse errors surface the byte offset through SimError.
  expect_error(write_tmp("m_truncated.json",
                         R"({"schema": "wasp-run-manifest-v1")"),
               "byte");
}

// --- diff_manifests -------------------------------------------------------

rep::ManifestView view_with(
    std::initializer_list<std::pair<const char*, double>> metrics) {
  rep::ManifestView v;
  for (const auto& [name, value] : metrics) v.metrics.emplace(name, value);
  return v;
}

const rep::MetricDelta& find_delta(const std::vector<rep::MetricDelta>& ds,
                                   const std::string& name) {
  for (const auto& d : ds) {
    if (d.name == name) return d;
  }
  ADD_FAILURE() << "no delta named " << name;
  static rep::MetricDelta none;
  return none;
}

TEST(ReportDiff, DeterministicMetricsRequireExactEquality) {
  const auto a = view_with({{"engine.events", 100}, {"engine.run_ns", 500}});
  const auto b = view_with({{"engine.events", 101}, {"engine.run_ns", 900}});
  const auto ds = rep::diff_manifests(a, b, rep::DiffOptions{});
  const auto& det = find_delta(ds, "engine.events");
  EXPECT_TRUE(det.deterministic);
  EXPECT_TRUE(det.breach);  // off by one, no band applies
  // Timing metric with default (report-only) tolerance never breaches.
  const auto& timing = find_delta(ds, "engine.run_ns");
  EXPECT_FALSE(timing.deterministic);
  EXPECT_FALSE(timing.breach);
  EXPECT_NEAR(timing.rel, 0.8, 1e-12);
}

TEST(ReportDiff, IdenticalViewsProduceZeroDeltas) {
  const auto a = view_with(
      {{"engine.events", 100}, {"faults.injected", 7}, {"pool.tasks", 9}});
  const auto ds = rep::diff_manifests(a, a, rep::DiffOptions{});
  for (const auto& d : ds) {
    EXPECT_EQ(d.rel, 0.0) << d.name;
    EXPECT_FALSE(d.breach) << d.name;
  }
}

TEST(ReportDiff, ToleranceEdgeIsInclusive) {
  const auto a = view_with({{"analyze.ns", 100}});
  rep::DiffOptions opts;
  opts.tolerance = 0.10;
  // rel == tolerance exactly: inside the band.
  auto ds = rep::diff_manifests(a, view_with({{"analyze.ns", 110}}), opts);
  EXPECT_FALSE(find_delta(ds, "analyze.ns").breach);
  // One part in a thousand past the band: breach, in either direction.
  ds = rep::diff_manifests(a, view_with({{"analyze.ns", 110.2}}), opts);
  EXPECT_TRUE(find_delta(ds, "analyze.ns").breach);
  ds = rep::diff_manifests(a, view_with({{"analyze.ns", 89.8}}), opts);
  EXPECT_TRUE(find_delta(ds, "analyze.ns").breach);
}

TEST(ReportDiff, LongestPrefixOverrideWins) {
  const auto a = view_with({{"pool.tasks", 100}, {"pool.task_run_ns", 100}});
  const auto b = view_with({{"pool.tasks", 140}, {"pool.task_run_ns", 140}});
  rep::DiffOptions opts;
  opts.tolerance = 0.05;
  opts.overrides.emplace_back("pool.", 0.5);
  opts.overrides.emplace_back("pool.tasks", 0.1);
  const auto ds = rep::diff_manifests(a, b, opts);
  EXPECT_TRUE(find_delta(ds, "pool.tasks").breach);        // 40% > 10%
  EXPECT_FALSE(find_delta(ds, "pool.task_run_ns").breach); // 40% < 50%
}

TEST(ReportDiff, MissingMetricsCompareAsZero) {
  const auto a = view_with({{"faults.injected", 3}});
  const auto b = view_with({{"replay.ops", 5}});
  const auto ds = rep::diff_manifests(a, b, rep::DiffOptions{});
  const auto& gone = find_delta(ds, "faults.injected");
  EXPECT_EQ(gone.b, 0.0);
  EXPECT_TRUE(gone.breach);  // deterministic 3 -> 0
  const auto& born = find_delta(ds, "replay.ops");
  EXPECT_EQ(born.a, 0.0);
  EXPECT_EQ(born.rel, 1.0);
  EXPECT_TRUE(born.breach);  // deterministic 0 -> 5
}

// --- aggregate_chrome_trace -----------------------------------------------

TEST(ReportTrace, AggregatesSelfTimeFromNestedSpans) {
  const std::string path = write_tmp("agg.trace.json", R"({"traceEvents": [
    {"name": "outer", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
    {"name": "inner", "ph": "B", "pid": 1, "tid": 1, "ts": 20},
    {"name": "inner", "ph": "E", "pid": 1, "tid": 1, "ts": 50},
    {"name": "outer", "ph": "E", "pid": 1, "tid": 1, "ts": 100},
    {"name": "outer", "ph": "B", "pid": 1, "tid": 2, "ts": 10},
    {"name": "outer", "ph": "E", "pid": 1, "tid": 2, "ts": 30},
    {"name": "dangling", "ph": "B", "pid": 9, "tid": 9, "ts": 5}
  ]})");
  const auto spans = rep::aggregate_chrome_trace(path);
  ASSERT_EQ(spans.size(), 2u);  // dangling B never completes
  const auto& inner = spans[0].name == "inner" ? spans[0] : spans[1];
  const auto& outer = spans[0].name == "outer" ? spans[0] : spans[1];
  EXPECT_EQ(inner.count, 1u);
  EXPECT_EQ(inner.total_ns, 30000u);
  EXPECT_EQ(inner.self_ns, 30000u);
  EXPECT_EQ(outer.count, 2u);            // both tracks
  EXPECT_EQ(outer.total_ns, 120000u);    // 100us + 20us
  EXPECT_EQ(outer.self_ns, 90000u);      // inner's 30us subtracted
}

TEST(ReportTrace, RejectsNonTraceDocuments) {
  EXPECT_THROW(
      rep::aggregate_chrome_trace(write_tmp("nottrace.json", "{\"x\": 1}")),
      util::SimError);
}

// --- load_bench_results ---------------------------------------------------

constexpr const char* kV2Doc = R"({
  "schema": "wasp-bench-results-v2",
  "scale": "test",
  "jobs": 2,
  "workloads": [
    {"name": "CM1", "backend": "memory", "engine_events": 100,
     "trace_rows": 50, "events_per_sec": 1000, "analyzer_rows_per_sec": 500,
     "io": {"present": false, "chunk_loads": 0},
     "telemetry": {"engine_events": 100}},
    {"name": "CM1", "backend": "spill", "engine_events": 100,
     "trace_rows": 50, "events_per_sec": 900, "analyzer_rows_per_sec": 400,
     "io": {"present": true, "chunk_loads": 7},
     "telemetry": {"engine_events": 100}}
  ],
  "sweeps": [
    {"name": "fig7", "telemetry": {"engine_events": 777}}
  ]
})";

constexpr const char* kV3Doc = R"({
  "schema": "wasp-bench-results-v3",
  "scale": "test",
  "git_sha": "0123456789012345678901234567890123456789",
  "timestamp": "2026-08-09T00:00:00Z",
  "jobs": 2,
  "workloads": [
    {"name": "CM1", "backend": "memory", "engine_events": 100,
     "trace_rows": 50, "events_per_sec": 1000, "analyzer_rows_per_sec": 500,
     "wall_seconds": 0.5, "telemetry": {"engine_events": 100}},
    {"name": "CM1", "backend": "spill", "engine_events": 100,
     "trace_rows": 50, "events_per_sec": 900, "analyzer_rows_per_sec": 400,
     "wall_seconds": 0.7, "io": {"chunk_loads": 7},
     "telemetry": {"engine_events": 100}}
  ],
  "sweeps": [
    {"name": "fig7", "telemetry": {"engine_events": 777}}
  ]
})";

TEST(ReportBench, NormalizesIoPresenceAcrossSchemaVersions) {
  const auto v2 = rep::load_bench_results(write_tmp("bench_v2.json", kV2Doc));
  const auto v3 = rep::load_bench_results(write_tmp("bench_v3.json", kV3Doc));
  EXPECT_EQ(v2.version, 2);
  EXPECT_EQ(v3.version, 3);
  EXPECT_EQ(v2.git_sha, "unknown");
  EXPECT_EQ(v3.git_sha, "0123456789012345678901234567890123456789");
  EXPECT_EQ(v3.timestamp, "2026-08-09T00:00:00Z");
  ASSERT_EQ(v2.workloads.size(), 2u);
  ASSERT_EQ(v3.workloads.size(), 2u);
  // v2 zeroed-io-with-present-false and v3 absent-io read identically.
  EXPECT_FALSE(v2.workloads[0].io_present);
  EXPECT_FALSE(v3.workloads[0].io_present);
  EXPECT_TRUE(v2.workloads[1].io_present);
  EXPECT_TRUE(v3.workloads[1].io_present);
  EXPECT_EQ(v2.workloads[0].wall_seconds, 0.0);
  EXPECT_EQ(v3.workloads[0].wall_seconds, 0.5);
  EXPECT_EQ(v2.sweep_engine_events.at("fig7"), 777u);
  // A v2 baseline checks cleanly against v3 results of the same run.
  const auto verdict =
      rep::check_bench_results(v3, v2, rep::CheckOptions{});
  EXPECT_FALSE(verdict.regression);
  EXPECT_FALSE(verdict.violation);
  EXPECT_EQ(verdict.exit_code(false), 0);
}

TEST(ReportBench, DiagnosesMalformedResults) {
  const auto expect_error = [](const std::string& path,
                               const std::string& needle) {
    try {
      rep::load_bench_results(path);
      FAIL() << "expected SimError for " << path;
    } catch (const util::SimError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error(write_tmp("b_noschema.json", "{}"), "schema");
  expect_error(write_tmp("b_wrong.json", R"({"schema": "wasp-bench-results-v9",
                                             "workloads": []})"),
               "unsupported schema");
  expect_error(write_tmp("b_nowork.json",
                         R"({"schema": "wasp-bench-results-v3"})"),
               "workloads");
  expect_error(write_tmp("b_noname.json",
                         R"({"schema": "wasp-bench-results-v3",
                             "workloads": [{"backend": "memory"}]})"),
               "name");
}

// --- check_bench_results --------------------------------------------------

rep::BenchResults bench_with(double rows_per_sec, std::uint64_t events) {
  rep::BenchResults r;
  r.version = 3;
  r.scale = "test";
  rep::BenchEntry e;
  e.name = "CM1";
  e.backend = "memory";
  e.engine_events = events;
  e.trace_rows = 50;
  e.events_per_sec = 1000;
  e.analyzer_rows_per_sec = rows_per_sec;
  r.workloads.push_back(e);
  r.sweep_engine_events.emplace("fig7", 777u);
  return r;
}

TEST(ReportCheck, TwentyPercentDropFailsFifteenPercentBand) {
  const auto baseline = bench_with(1000, 100);
  const auto verdict = rep::check_bench_results(
      bench_with(800, 100), baseline, rep::CheckOptions{});
  EXPECT_TRUE(verdict.regression);
  EXPECT_FALSE(verdict.violation);
  EXPECT_EQ(verdict.exit_code(false), 1);
  EXPECT_EQ(verdict.exit_code(true), 0);  // advisory absorbs perf breaches
  EXPECT_STREQ(verdict.verdict_string(), "regression");
}

TEST(ReportCheck, WithinBandAndFasterBothPass) {
  const auto baseline = bench_with(1000, 100);
  EXPECT_EQ(rep::check_bench_results(bench_with(900, 100), baseline,
                                     rep::CheckOptions{})
                .exit_code(false),
            0);
  EXPECT_EQ(rep::check_bench_results(bench_with(5000, 100), baseline,
                                     rep::CheckOptions{})
                .exit_code(false),
            0);
}

TEST(ReportCheck, DeterminismViolationIsHardEvenInAdvisoryMode) {
  const auto baseline = bench_with(1000, 100);
  const auto verdict = rep::check_bench_results(bench_with(1000, 101),
                                                baseline, rep::CheckOptions{});
  EXPECT_TRUE(verdict.violation);
  EXPECT_EQ(verdict.exit_code(true), 3);
  EXPECT_STREQ(verdict.verdict_string(), "violation");
}

TEST(ReportCheck, SweepEventsAndMissingEntriesAreChecked) {
  const auto baseline = bench_with(1000, 100);
  auto drifted = bench_with(1000, 100);
  drifted.sweep_engine_events["fig7"] = 778;
  EXPECT_TRUE(rep::check_bench_results(drifted, baseline, rep::CheckOptions{})
                  .violation);
  auto renamed = bench_with(1000, 100);
  renamed.workloads[0].name = "CM2";
  const auto verdict =
      rep::check_bench_results(renamed, baseline, rep::CheckOptions{});
  EXPECT_TRUE(verdict.violation);
  ASSERT_FALSE(verdict.notes.empty());
  EXPECT_NE(verdict.notes[0].find("missing"), std::string::npos);
}

TEST(ReportCheck, ScaleMismatchIsAViolation) {
  auto paper = bench_with(1000, 100);
  paper.scale = "paper";
  const auto verdict = rep::check_bench_results(paper, bench_with(1000, 100),
                                                rep::CheckOptions{});
  EXPECT_TRUE(verdict.violation);
  EXPECT_EQ(verdict.exit_code(true), 3);
}

TEST(ReportCheck, VerdictJsonIsMachineReadable) {
  const auto verdict = rep::check_bench_results(
      bench_with(800, 100), bench_with(1000, 100), rep::CheckOptions{});
  std::ostringstream os;
  verdict.write_json(os, "results.json", "baseline.json", 0.15, false);
  const auto doc = util::json::parse(os.str());
  EXPECT_EQ(doc.str_or("schema", ""), "wasp-report-verdict-v1");
  EXPECT_EQ(doc.str_or("verdict", ""), "regression");
  EXPECT_EQ(doc.num_or("exit_code", -1), 1.0);
  const auto* checks = doc.get("checks");
  ASSERT_TRUE(checks != nullptr && checks->is_array());
  bool found = false;
  for (const auto& c : checks->arr) {
    if (c.str_or("metric", "") == "analyzer_rows_per_sec") {
      EXPECT_EQ(c.str_or("status", ""), "regression");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace wasp
