// Paper-scale regression bands: the headline numbers of Table I and the
// two case studies must stay inside the reproduction tolerances recorded
// in EXPERIMENTS.md. These are the only tests that run at full 32-node
// scale (a few seconds total).
#include <gtest/gtest.h>

#include "advisor/rules.hpp"
#include "workloads/ior.hpp"
#include "workloads/registry.hpp"

namespace wasp::workloads {
namespace {

struct Band {
  const char* name;
  double job_lo, job_hi;          // seconds
  double read_lo, read_hi;        // GB
  std::uint64_t files_lo, files_hi;
};

// ~±25% around the paper's Table I values (the prose values where the
// paper contradicts itself; see EXPERIMENTS.md).
constexpr Band kBands[] = {
    {"CM1", 500, 830, 15, 27, 770, 790},
    {"HACC (FPP)", 25, 45, 600, 1000, 1280, 1280},
    {"Cosmoflow", 2700, 4500, 1200, 1900, 49000, 50000},
    {"JAG", 1000, 1600, 19, 40, 2, 3},
    {"Montage MPI", 190, 310, 21, 35, 1000, 1200},
    {"Montage Pegasus", 800, 1300, 90, 170, 5000, 8200},
};

TEST(PaperScale, TableOneBandsHold) {
  const auto entries = paper_workloads();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    SCOPED_TRACE(entries[i].name);
    const auto out = run(cluster::lassen(32), entries[i].make_paper());
    const Band& b = kBands[i];
    EXPECT_GE(out.job_seconds, b.job_lo);
    EXPECT_LE(out.job_seconds, b.job_hi);
    const double read_gb =
        static_cast<double>(out.profile.totals.read_bytes) / 1e9;
    EXPECT_GE(read_gb, b.read_lo);
    EXPECT_LE(read_gb, b.read_hi);
    EXPECT_GE(out.profile.files.size(), b.files_lo);
    EXPECT_LE(out.profile.files.size(), b.files_hi);
  }
}

TEST(PaperScale, CosmoflowMetadataStorm) {
  auto out = run(cluster::lassen(32), make_cosmoflow(CosmoflowParams::paper()));
  // Paper: 98% of I/O time in metadata ops. Band: > 90%.
  EXPECT_GT(out.profile.totals.meta_time_fraction(), 0.90);
  // The advisor must derive the paper's optimization from the run.
  bool preload = false;
  for (const auto& r : out.recommendations) {
    preload = preload || r.id == "preload-input";
  }
  EXPECT_TRUE(preload);
}

TEST(PaperScale, Figure7SpeedupBandAndTrend) {
  auto speedup_at = [](int nodes) {
    CosmoflowParams P = CosmoflowParams::paper();
    P.nodes = nodes;
    auto base = run(cluster::lassen(nodes), make_cosmoflow(P));
    auto cfg = advisor::RuleEngine::configure(base.recommendations);
    auto opt = run(cluster::lassen(nodes), make_cosmoflow(P), cfg);
    return (base.profile.io_time_fraction * base.job_seconds) /
           (opt.profile.io_time_fraction * opt.job_seconds);
  };
  const double s32 = speedup_at(32);
  const double s256 = speedup_at(256);
  // Paper: 2.2x at 32 nodes growing to 4.6x at 256.
  EXPECT_GT(s32, 1.5);
  EXPECT_LT(s32, 3.5);
  EXPECT_GT(s256, 4.0);
  EXPECT_LT(s256, 9.0);
  EXPECT_GT(s256, s32);  // the headline trend: speedup grows with scale
}

TEST(PaperScale, Figure8SpeedupBand) {
  auto speedup_at = [](int nodes) {
    MontageMpiParams P = MontageMpiParams::paper();
    P.nodes = nodes;
    P.projected_per_node = P.projected_per_node * 32 / nodes;
    P.mosaic_per_node = P.mosaic_per_node * 32 / nodes;
    P.png_per_node = P.png_per_node * 32 / nodes;
    auto base = run(cluster::lassen(nodes), make_montage_mpi(P));
    auto cfg = advisor::RuleEngine::configure(base.recommendations);
    auto opt = run(cluster::lassen(nodes), make_montage_mpi(P), cfg);
    return (base.profile.io_time_fraction * base.job_seconds) /
           (opt.profile.io_time_fraction * opt.job_seconds);
  };
  // Paper band is 3.9x .. 8x across scales.
  const double s32 = speedup_at(32);
  const double s256 = speedup_at(256);
  EXPECT_GT(s32, 3.9);
  EXPECT_LT(s32, 8.0);
  EXPECT_GT(s256, 3.9);
  EXPECT_LT(s256, 8.0);
}

TEST(PaperScale, IorBandwidthEnvelope) {
  // Table IX: "64GB/s using 32 node IOR".
  auto [write_gbps, read_gbps] =
      measure_ior(cluster::lassen(32), IorParams::paper());
  EXPECT_GT(write_gbps, 45.0);
  EXPECT_LT(write_gbps, 70.0);
  EXPECT_GT(read_gbps, 45.0);
  EXPECT_LT(read_gbps, 70.0);
}

TEST(PaperScale, AdvisorDerivesMontageOptimizations) {
  auto out = run(cluster::lassen(32),
                 make_montage_mpi(MontageMpiParams::paper()));
  bool shm = false;
  bool locality = false;
  for (const auto& r : out.recommendations) {
    shm = shm || r.id == "intermediates-node-local";
    locality = locality || r.id == "locality-placement";
  }
  EXPECT_TRUE(shm);
  EXPECT_TRUE(locality);
}

}  // namespace
}  // namespace wasp::workloads
