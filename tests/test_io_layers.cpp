// Interface-layer tests: POSIX semantics, STDIO buffering, MPI-IO collective
// aggregation, HDF5 metadata amplification — and that the tracer sees
// user-level ops while library-internal I/O stays suppressed.
#include <gtest/gtest.h>

#include <memory>

#include "io/hdf5.hpp"
#include "io/mpiio.hpp"
#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "sim_test_util.hpp"
#include "util/error.hpp"

namespace wasp::io {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;
using testutil::count_ops;
using testutil::count_records;

struct IoFixture : ::testing::Test {
  IoFixture() : sim(cluster::tiny(2)) {}
  Simulation sim;
};

TEST_F(IoFixture, PosixWriteThenReadRoundTrip) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/out", OpenMode::kWrite);
    co_await posix.write(f, 1024, 4);
    co_await posix.close(f);
    EXPECT_EQ(posix.size_of("/p/gpfs1/out"), 4096u);

    auto r = co_await posix.open("/p/gpfs1/out", OpenMode::kRead);
    co_await posix.read(r, 4096, 1);
    co_await posix.close(r);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  EXPECT_EQ(count_ops(sim.tracer(),
                      [](const trace::Record& r) {
                        return r.op == trace::Op::kWrite;
                      }),
            4u);
  EXPECT_EQ(count_ops(sim.tracer(),
                      [](const trace::Record& r) {
                        return r.op == trace::Op::kOpen;
                      }),
            2u);
}

TEST_F(IoFixture, PosixReadMissingFileThrows) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    EXPECT_THROW(
        { [[maybe_unused]] auto f =
              co_await posix.open("/p/gpfs1/nope", OpenMode::kRead); },
        util::SimError);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, PosixReadPastEofThrows) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/x", OpenMode::kWrite);
    co_await posix.write(f, 100, 1);
    co_await posix.close(f);
    auto r = co_await posix.open("/p/gpfs1/x", OpenMode::kRead);
    EXPECT_THROW({ co_await posix.read(r, 101, 1); }, util::SimError);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, PosixAppendStartsAtEof) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/x", OpenMode::kWrite);
    co_await posix.write(f, 100, 1);
    co_await posix.close(f);
    auto g = co_await posix.open("/p/gpfs1/x", OpenMode::kAppend);
    EXPECT_EQ(g.offset, 100u);
    co_await posix.write(g, 50, 1);
    co_await posix.close(g);
    EXPECT_EQ(posix.size_of("/p/gpfs1/x"), 150u);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, NodeLocalWriteEnospc) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/dev/shm/big", OpenMode::kWrite);
    const auto cap = s.node_local("shm").spec().capacity;
    EXPECT_THROW({ co_await posix.write(f, cap + 1, 1); }, util::SimError);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, UnlinkReleasesNodeLocalCapacity) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto& shm = s.node_local("shm");
    auto f = co_await posix.open("/dev/shm/tmpf", OpenMode::kWrite);
    co_await posix.write(f, util::kMiB, 1);
    co_await posix.close(f);
    EXPECT_EQ(shm.used_bytes(0), util::kMiB);
    co_await posix.unlink("/dev/shm/tmpf");
    EXPECT_EQ(shm.used_bytes(0), 0u);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, StdioBufferingCoalescesSmallWritesAtTheFs) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Stdio stdio(p, 4 * util::kKiB);
    auto f = co_await stdio.fopen("/p/gpfs1/s", OpenMode::kWrite);
    co_await stdio.fwrite(f, 64, 1024);  // 64KiB in 64B user ops
    co_await stdio.fclose(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  // Trace sees 1024 user-level STDIO writes...
  EXPECT_EQ(count_ops(sim.tracer(),
                      [](const trace::Record& r) {
                        return r.iface == trace::Iface::kStdio &&
                               r.op == trace::Op::kWrite;
                      }),
            1024u);
  // ...but the filesystem served only ~16 buffer-sized flushes.
  EXPECT_LE(sim.pfs().counters().data_ops, 17u);
  EXPECT_EQ(sim.pfs().counters().bytes_written, 64 * util::kKiB);
}

TEST_F(IoFixture, StdioReadaheadCoalescesSmallReads) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto w = co_await posix.open("/p/gpfs1/r", OpenMode::kWrite);
    co_await posix.write(w, 64 * util::kKiB, 1);
    co_await posix.close(w);

    Stdio stdio(p, 8 * util::kKiB);
    auto f = co_await stdio.fopen("/p/gpfs1/r", OpenMode::kRead);
    co_await stdio.fread(f, 128, 512);  // 64KiB in 128B user ops
    co_await stdio.fclose(f);
  };
  const auto before = sim.pfs().counters().data_ops;
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  // 1 posix write + 8 readahead fetches of 8KiB.
  EXPECT_LE(sim.pfs().counters().data_ops - before, 10u);
  EXPECT_EQ(count_ops(sim.tracer(),
                      [](const trace::Record& r) {
                        return r.iface == trace::Iface::kStdio &&
                               r.op == trace::Op::kRead;
                      }),
            512u);
}

TEST_F(IoFixture, StdioLargeWritesBypassBuffer) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Stdio stdio(p, 4 * util::kKiB);
    auto f = co_await stdio.fopen("/p/gpfs1/big", OpenMode::kWrite);
    co_await stdio.fwrite(f, util::kMiB, 2);
    co_await stdio.fclose(f);
    EXPECT_EQ(s.pfs().ns({0, 0}).inode(f.base.id).size, 2 * util::kMiB);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, StdioFseekFlushesAndRepositions) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Stdio stdio(p, 4 * util::kKiB);
    auto f = co_await stdio.fopen("/p/gpfs1/sk", OpenMode::kWrite);
    co_await stdio.fwrite(f, 100, 1);  // stays buffered
    co_await stdio.fseek(f, 1000);     // must flush the 100 bytes
    co_await stdio.fwrite(f, 100, 1);
    co_await stdio.fclose(f);
    EXPECT_EQ(stdio.proc().simulation().pfs().ns({0, 0}).inode(f.base.id).size,
              1100u);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST_F(IoFixture, MpiioCollectiveOnlyLeadersTouchTheFs) {
  const auto app = sim.tracer().register_app("t");
  auto comm = sim.make_comm(4, 2);  // 2 ranks per node
  std::vector<std::unique_ptr<Proc>> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back(
        std::make_unique<Proc>(sim, app, r, comm->node_of(r), comm.get()));
  }

  // Seed the shared file.
  auto seed = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/shared", OpenMode::kWrite);
    co_await posix.write(f, 4 * util::kMiB, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(seed(sim, app));
  sim.engine().run();
  const auto ops_before = sim.pfs().counters().data_ops;

  auto rank_prog = [](Proc& p) -> Task<void> {
    MpiIo mpiio(p);
    auto f = co_await mpiio.open_all("/p/gpfs1/shared", OpenMode::kRead);
    co_await mpiio.read_all(f, 0, util::kMiB, 1);
    co_await mpiio.close_all(f);
  };
  for (auto& p : procs) sim.engine().spawn(rank_prog(*p));
  sim.engine().run();

  // 2 leaders x 1 aggregated request each.
  EXPECT_EQ(sim.pfs().counters().data_ops - ops_before, 2u);
  // But the trace shows all 4 ranks doing a collective read.
  EXPECT_EQ(count_ops(sim.tracer(),
                      [](const trace::Record& r) {
                        return r.iface == trace::Iface::kMpiio &&
                               r.op == trace::Op::kRead;
                      }),
            4u);
}

TEST_F(IoFixture, MpiioWithoutAggregationEveryRankHitsTheFs) {
  const auto app = sim.tracer().register_app("t");
  auto comm = sim.make_comm(4, 2);
  std::vector<std::unique_ptr<Proc>> procs;
  for (int r = 0; r < 4; ++r) {
    procs.push_back(
        std::make_unique<Proc>(sim, app, r, comm->node_of(r), comm.get()));
  }
  auto rank_prog = [](Proc& p) -> Task<void> {
    MpiIoConfig cfg;
    cfg.aggregators_per_node = 0;
    MpiIo mpiio(p, cfg);
    auto f = co_await mpiio.open_all("/p/gpfs1/shared2", OpenMode::kWrite);
    co_await mpiio.write_all(f, static_cast<fs::Bytes>(p.rank()) * util::kMiB,
                             util::kMiB, 1);
    co_await mpiio.close_all(f);
  };
  for (auto& p : procs) sim.engine().spawn(rank_prog(*p));
  sim.engine().run();
  EXPECT_EQ(sim.pfs().counters().data_ops, 4u);
}

TEST_F(IoFixture, Hdf5ContiguousAmplifiesMetadata) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto w = co_await posix.open("/p/gpfs1/d.h5", OpenMode::kWrite);
    co_await posix.write(w, 32 * util::kMiB, 1);
    co_await posix.close(w);

    Hdf5 hdf5(p);
    Hdf5Config cfg;
    cfg.use_mpiio = false;
    cfg.chunk_size = 0;  // contiguous
    auto f = co_await hdf5.open("/p/gpfs1/d.h5", OpenMode::kRead, cfg);
    co_await hdf5.read(f, 0, util::kMiB, 8);
    co_await hdf5.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  const auto meta = count_ops(sim.tracer(), [](const trace::Record& r) {
    return r.iface == trace::Iface::kHdf5 && r.op == trace::Op::kMetaAccess;
  });
  // 4 at open + 2 per access x 8 accesses.
  EXPECT_EQ(meta, 20u);
}

TEST_F(IoFixture, Hdf5ChunkedCutsMetadataPerAccess) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto w = co_await posix.open("/p/gpfs1/c.h5", OpenMode::kWrite);
    co_await posix.write(w, 32 * util::kMiB, 1);
    co_await posix.close(w);

    Hdf5 hdf5(p);
    Hdf5Config cfg;
    cfg.use_mpiio = false;
    cfg.chunk_size = util::kMiB;
    auto f = co_await hdf5.open("/p/gpfs1/c.h5", OpenMode::kRead, cfg);
    co_await hdf5.read(f, 0, util::kMiB, 8);
    co_await hdf5.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  const auto meta = count_ops(sim.tracer(), [](const trace::Record& r) {
    return r.iface == trace::Iface::kHdf5 && r.op == trace::Op::kMetaAccess;
  });
  // 4 at open + 1 cached b-tree probe for the batch.
  EXPECT_EQ(meta, 5u);
}

TEST_F(IoFixture, SuppressionHidesInternalOpsFromTrace) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    runtime::Proc::Suppression mute(p);
    auto f = co_await posix.open("/p/gpfs1/hidden", OpenMode::kWrite);
    co_await posix.write(f, 1024, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  EXPECT_EQ(sim.tracer().records().size(), 0u);
  // The filesystem still did the work.
  EXPECT_EQ(sim.pfs().counters().bytes_written, 1024u);
}

TEST_F(IoFixture, ComputeSpansAreTraced) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    co_await p.compute(10 * sim::kMs);
    co_await p.gpu_compute(20 * sim::kMs);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  EXPECT_EQ(count_records(sim.tracer(),
                          [](const trace::Record& r) {
                            return r.iface == trace::Iface::kCpu;
                          }),
            1u);
  EXPECT_EQ(count_records(sim.tracer(),
                          [](const trace::Record& r) {
                            return r.iface == trace::Iface::kGpu;
                          }),
            1u);
  EXPECT_EQ(sim.engine().now(), 30 * sim::kMs);
}

}  // namespace
}  // namespace wasp::io
