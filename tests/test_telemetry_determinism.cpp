// Telemetry must be strictly read-only: enabling the metrics clock and the
// span tracer cannot perturb a single profile byte, at any job count, on
// either store backend. Every variant below is compared field-for-field
// (doubles with operator==) against a baseline computed with telemetry off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "obs/obs.hpp"
#include "profile_test_util.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

class TelemetryToggle {
 public:
  TelemetryToggle() {
    obs::Registry::set_timing_enabled(true);
    obs::SpanTracer::instance().set_enabled(true);
  }
  ~TelemetryToggle() {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::Registry::set_timing_enabled(false);
  }
};

TEST(TelemetryDeterminism, ProfilesIdenticalOnOffAcrossJobsAndBackends) {
  ASSERT_FALSE(obs::Registry::timing_enabled());
  ASSERT_FALSE(obs::SpanTracer::instance().enabled());

  runtime::Simulation sim(cluster::lassen(4));
  const auto out0 = workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const auto& records = sim.tracer().records();
  ASSERT_GT(records.size(), 100u);

  analysis::Analyzer::Options o1;
  o1.jobs = 1;
  o1.chunk_rows = 23;  // misaligned with storage chunking on purpose
  analysis::Analyzer::Options o4 = o1;
  o4.jobs = 4;

  // Baseline: telemetry fully off, memory backend, one job.
  const auto baseline = analysis::Analyzer(o1).analyze(sim.tracer());

  const auto spill_profile = [&](const analysis::Analyzer::Options& o,
                                 const char* dir) {
    analysis::SpillColumnStore store(
        {.dir = std::string(::testing::TempDir()) + "/" + dir,
         .chunk_rows = 17,
         .max_resident_chunks = 3});
    store.append(records);
    store.finalize();
    return analysis::Analyzer(o).analyze(
        analysis::tracer_input(sim.tracer(), &store));
  };

  // Telemetry off: both backends, both job counts.
  expect_profiles_identical(baseline,
                            analysis::Analyzer(o4).analyze(sim.tracer()));
  expect_profiles_identical(baseline, spill_profile(o1, "det_off_j1.spill"));
  expect_profiles_identical(baseline, spill_profile(o4, "det_off_j4.spill"));

  // Telemetry on (metrics clock + span tracer): same four variants.
  {
    TelemetryToggle on;
    expect_profiles_identical(baseline,
                              analysis::Analyzer(o1).analyze(sim.tracer()));
    expect_profiles_identical(baseline,
                              analysis::Analyzer(o4).analyze(sim.tracer()));
    expect_profiles_identical(baseline, spill_profile(o1, "det_on_j1.spill"));
    expect_profiles_identical(baseline, spill_profile(o4, "det_on_j4.spill"));
  }

  // The whole-pipeline variant: a fresh simulation run with telemetry on
  // must reproduce the baseline run's profile and virtual clock exactly.
  {
    TelemetryToggle on;
    runtime::Simulation sim2(cluster::lassen(4));
    const auto out2 = workloads::run_with(
        sim2, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
        advisor::RunConfig{}, analysis::Analyzer::Options{});
    EXPECT_EQ(out0.job_seconds, out2.job_seconds);
    EXPECT_EQ(out0.engine_events, out2.engine_events);
    expect_profiles_identical(out0.profile, out2.profile);
    ASSERT_EQ(sim2.tracer().records().size(), records.size());
  }
}

}  // namespace
}  // namespace wasp
