// Telemetry must be strictly read-only: enabling the metrics clock and the
// span tracer cannot perturb a single profile byte, at any job count, on
// either store backend. Every variant below is compared field-for-field
// (doubles with operator==) against a baseline computed with telemetry off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "obs/obs.hpp"
#include "profile_test_util.hpp"
#include "sim/faults.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

class TelemetryToggle {
 public:
  TelemetryToggle() {
    obs::Registry::set_timing_enabled(true);
    obs::SpanTracer::instance().set_enabled(true);
  }
  ~TelemetryToggle() {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::Registry::set_timing_enabled(false);
  }
};

TEST(TelemetryDeterminism, ProfilesIdenticalOnOffAcrossJobsAndBackends) {
  ASSERT_FALSE(obs::Registry::timing_enabled());
  ASSERT_FALSE(obs::SpanTracer::instance().enabled());

  runtime::Simulation sim(cluster::lassen(4));
  const auto out0 = workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const auto& records = sim.tracer().records();
  ASSERT_GT(records.size(), 100u);

  analysis::Analyzer::Options o1;
  o1.jobs = 1;
  o1.chunk_rows = 23;  // misaligned with storage chunking on purpose
  analysis::Analyzer::Options o4 = o1;
  o4.jobs = 4;

  // Baseline: telemetry fully off, memory backend, one job.
  const auto baseline = analysis::Analyzer(o1).analyze(sim.tracer());

  const auto spill_profile = [&](const analysis::Analyzer::Options& o,
                                 const char* dir) {
    analysis::SpillColumnStore store(
        {.dir = std::string(::testing::TempDir()) + "/" + dir,
         .chunk_rows = 17,
         .max_resident_chunks = 3});
    store.append(records);
    store.finalize();
    return analysis::Analyzer(o).analyze(
        analysis::tracer_input(sim.tracer(), &store));
  };

  // Telemetry off: both backends, both job counts.
  expect_profiles_identical(baseline,
                            analysis::Analyzer(o4).analyze(sim.tracer()));
  expect_profiles_identical(baseline, spill_profile(o1, "det_off_j1.spill"));
  expect_profiles_identical(baseline, spill_profile(o4, "det_off_j4.spill"));

  // Telemetry on (metrics clock + span tracer): same four variants.
  {
    TelemetryToggle on;
    expect_profiles_identical(baseline,
                              analysis::Analyzer(o1).analyze(sim.tracer()));
    expect_profiles_identical(baseline,
                              analysis::Analyzer(o4).analyze(sim.tracer()));
    expect_profiles_identical(baseline, spill_profile(o1, "det_on_j1.spill"));
    expect_profiles_identical(baseline, spill_profile(o4, "det_on_j4.spill"));
  }

  // The whole-pipeline variant: a fresh simulation run with telemetry on
  // must reproduce the baseline run's profile and virtual clock exactly.
  {
    TelemetryToggle on;
    runtime::Simulation sim2(cluster::lassen(4));
    const auto out2 = workloads::run_with(
        sim2, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
        advisor::RunConfig{}, analysis::Analyzer::Options{});
    EXPECT_EQ(out0.job_seconds, out2.job_seconds);
    EXPECT_EQ(out0.engine_events, out2.engine_events);
    expect_profiles_identical(out0.profile, out2.profile);
    ASSERT_EQ(sim2.tracer().records().size(), records.size());
  }
}

// The manifest's deterministic fingerprint digests exactly the metrics
// that are functions of the simulation alone (engine events, virtual
// time, analyzer rows, faults.*, replay.*). Two runs of the same
// configuration must produce byte-identical fingerprints regardless of
// analyzer job count or store backend; the registry deltas are taken per
// run so the test is insensitive to whatever ran earlier in-process.
TEST(ManifestDeterminism, FingerprintIdenticalAcrossJobCounts) {
  const auto fingerprint_run = [](int jobs) {
    const obs::Snapshot before = obs::Registry::instance().snapshot();
    runtime::Simulation sim(cluster::lassen(4));
    advisor::RunConfig cfg;
    // Mild probabilities: enough draws land to populate faults.* without
    // ever exhausting the retry budget (which would abort the run).
    cfg.faults = sim::FaultPlan::parse(
        "seed=7; *: eio=0.02, slow=0.2, spike=5ms");
    analysis::Analyzer::Options o;
    o.jobs = jobs;
    (void)workloads::run_with(
        sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
        cfg, o);
    obs::RunManifest m;
    m.metrics = obs::Registry::instance().snapshot().delta(before);
    return m.deterministic_fingerprint();
  };
  const std::string fp1 = fingerprint_run(1);
  const std::string fp4 = fingerprint_run(4);
  EXPECT_EQ(fp1, fp4);
#ifndef WASP_OBS_OFF
  EXPECT_FALSE(fp1.empty());
  EXPECT_NE(fp1.find("engine.events="), std::string::npos);
  EXPECT_NE(fp1.find("faults."), std::string::npos);
#endif
}

TEST(ManifestDeterminism, FingerprintIdenticalAcrossBackends) {
  runtime::Simulation sim(cluster::lassen(4));
  (void)workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const auto& records = sim.tracer().records();
  ASSERT_GT(records.size(), 100u);

  const auto fingerprint_analyze = [&](bool spill, const char* dir) {
    const obs::Snapshot before = obs::Registry::instance().snapshot();
    analysis::Analyzer::Options o;
    o.jobs = spill ? 4 : 1;
    if (spill) {
      analysis::SpillColumnStore store(
          {.dir = std::string(::testing::TempDir()) + "/" + dir,
           .chunk_rows = 17,
           .max_resident_chunks = 3});
      store.append(records);
      store.finalize();
      (void)analysis::Analyzer(o).analyze(
          analysis::tracer_input(sim.tracer(), &store));
    } else {
      (void)analysis::Analyzer(o).analyze(sim.tracer());
    }
    obs::RunManifest m;
    m.metrics = obs::Registry::instance().snapshot().delta(before);
    return m.deterministic_fingerprint();
  };
  const std::string memory_fp = fingerprint_analyze(false, "");
  const std::string spill_fp = fingerprint_analyze(true, "manifest.spill");
  EXPECT_EQ(memory_fp, spill_fp);
#ifndef WASP_OBS_OFF
  EXPECT_NE(memory_fp.find("analyze.rows="), std::string::npos);
#endif
}

}  // namespace
}  // namespace wasp
