// Compression middleware: ratio model, logical/stored accounting, and the
// advisor rule's help-vs-hurt decision.
#include <gtest/gtest.h>

#include "advisor/rules.hpp"
#include "io/compression.hpp"
#include "sim_test_util.hpp"
#include "workloads/hacc.hpp"

namespace wasp::io {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

TEST(CompressionModel, RatioDependsOnDistribution) {
  EXPECT_GT(CompressionModel::ratio_for("uniform"), 1.0);  // grows!
  EXPECT_LT(CompressionModel::ratio_for("normal"), 0.6);
  EXPECT_LT(CompressionModel::ratio_for("gamma"), 0.7);
  EXPECT_LT(CompressionModel::ratio_for("sparse"), 0.2);
}

TEST(CompressedPosix, StoresCompressedBytesTracesLogicalOps) {
  Simulation sim(cluster::tiny(1));
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    CompressionModel model;
    model.ratio = 0.5;
    CompressedPosix cp(p, model);
    auto f = co_await cp.open("/p/gpfs1/z", OpenMode::kWrite);
    co_await cp.write(f, util::kMiB, 8);
    co_await cp.close(f);
    // Stored size is half the logical size.
    EXPECT_EQ(s.pfs().ns({0, 0}).inode(f.id).size, 4 * util::kMiB);
    EXPECT_EQ(cp.logical_written(), 8 * util::kMiB);

    auto g = co_await cp.open("/p/gpfs1/z", OpenMode::kRead);
    co_await cp.read(g, util::kMiB, 8);
    co_await cp.close(g);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  // PFS moved compressed bytes only...
  EXPECT_EQ(sim.pfs().counters().bytes_written, 4 * util::kMiB);
  EXPECT_EQ(sim.pfs().counters().bytes_read, 4 * util::kMiB);
  // ...while the trace reports the application's logical sizes.
  EXPECT_EQ(testutil::count_ops(sim.tracer(),
                                [](const trace::Record& r) {
                                  return r.op == trace::Op::kWrite &&
                                         r.size == util::kMiB;
                                }),
            8u);
}

TEST(CompressedPosix, GrowingRatioStoresMoreThanLogical) {
  Simulation sim(cluster::tiny(1));
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    CompressionModel model;
    model.ratio = 1.12;  // the paper's uniform-data pathology
    CompressedPosix cp(p, model);
    auto f = co_await cp.open("/p/gpfs1/u", OpenMode::kWrite);
    co_await cp.write(f, util::kMiB, 4);
    co_await cp.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  EXPECT_GT(sim.pfs().counters().bytes_written, 4 * util::kMiB);
}

TEST(CompressedPosix, GpuCodecFasterThanCpu) {
  auto run_once = [](bool gpu) {
    Simulation sim(cluster::tiny(1));
    const auto app = sim.tracer().register_app("t");
    auto prog = [](Simulation& s, std::uint16_t a, bool use_gpu)
        -> Task<void> {
      Proc p(s, a, 0, 0);
      CompressionModel model;
      model.use_gpu = use_gpu;
      model.ratio = 0.5;
      CompressedPosix cp(p, model);
      auto f = co_await cp.open("/p/gpfs1/g", OpenMode::kWrite);
      co_await cp.write(f, 16 * util::kMiB, 16);
      co_await cp.close(f);
    };
    sim.engine().spawn(prog(sim, app, gpu));
    sim.engine().run();
    return sim::to_seconds(sim.engine().now());
  };
  EXPECT_LT(run_once(true) * 2, run_once(false));
}

TEST(CompressionRule, FiresForCompressibleBigData) {
  charz::WorkloadCharacterization c;
  c.job.nodes = 32;
  c.job.gpus_per_node = 4;
  c.dataset.io_amount = 800ull * util::kGB;
  c.high_level_io.data_distribution = "normal";
  advisor::RuleEngine rules;
  auto recs = rules.evaluate(c);
  bool fired = false;
  for (const auto& r : recs) fired = fired || r.id == "compress-checkpoints";
  ASSERT_TRUE(fired);
  auto cfg = advisor::RuleEngine::configure(recs);
  EXPECT_TRUE(cfg.compress_checkpoints);
  EXPECT_TRUE(cfg.compress_on_gpu);
  EXPECT_LT(cfg.compression_ratio, 0.6);
}

TEST(CompressionRule, DeclinesForHighEntropyData) {
  charz::WorkloadCharacterization c;
  c.job.nodes = 32;
  c.dataset.io_amount = 800ull * util::kGB;
  c.high_level_io.data_distribution = "uniform";  // the §I pathology
  advisor::RuleEngine rules;
  for (const auto& r : rules.evaluate(c)) {
    EXPECT_NE(r.id, "compress-checkpoints");
  }
}

TEST(CompressionRule, HaccIsNotCompressed) {
  // HACC declares a uniform particle distribution: the advisor must NOT
  // recommend compression even though its I/O volume qualifies.
  auto out = workloads::run(cluster::lassen(4),
                            workloads::make_hacc(workloads::HaccParams::test()));
  for (const auto& r : out.recommendations) {
    EXPECT_NE(r.id, "compress-checkpoints");
  }
}

TEST(CompressionIntegration, HaccCompressedWritesLessToPfs) {
  workloads::HaccParams P = workloads::HaccParams::test();
  advisor::RunConfig cfg;
  cfg.compress_checkpoints = true;
  cfg.compress_on_gpu = true;
  cfg.compression_ratio = 0.5;
  runtime::Simulation plain(cluster::lassen(2));
  auto base = workloads::run_with(plain, workloads::make_hacc(P),
                                  advisor::RunConfig{},
                                  analysis::Analyzer::Options{});
  runtime::Simulation comp(cluster::lassen(2));
  auto z = workloads::run_with(comp, workloads::make_hacc(P), cfg,
                               analysis::Analyzer::Options{});
  EXPECT_LT(comp.pfs().counters().bytes_written,
            plain.pfs().counters().bytes_written * 6 / 10);
  // Trace still reports logical volumes: read == write.
  EXPECT_EQ(z.profile.totals.read_bytes, z.profile.totals.write_bytes);
}

}  // namespace
}  // namespace wasp::io
