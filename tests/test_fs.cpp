// Filesystem substrate tests: namespaces, mounts, the GPFS-like parallel FS
// timing model, node-local tiers and capacity accounting.
#include <gtest/gtest.h>

#include "fs/mount_table.hpp"
#include "fs/namespace.hpp"
#include "fs/node_local.hpp"
#include "fs/pfs.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace wasp::fs {
namespace {

using sim::Engine;
using sim::Task;

TEST(Namespace, CreateLookupRoundTrip) {
  Namespace ns;
  const FileId id = ns.create("/p/gpfs1/a", 5, 3, 1);
  EXPECT_EQ(ns.lookup("/p/gpfs1/a"), id);
  EXPECT_FALSE(ns.lookup("/p/gpfs1/b").has_value());
  EXPECT_EQ(ns.inode(id).creator_rank, 3);
  EXPECT_EQ(ns.inode(id).creator_node, 1);
  EXPECT_EQ(ns.inode(id).size, 0u);
}

TEST(Namespace, CreateIsIdempotent) {
  Namespace ns;
  const FileId a = ns.create("/x", 0, 0, 0);
  const FileId b = ns.create("/x", 9, 1, 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ns.file_count(), 1u);
}

TEST(Namespace, UnlinkKeepsInodeResolvable) {
  Namespace ns;
  const FileId id = ns.create("/x", 0, 0, 0);
  EXPECT_TRUE(ns.unlink("/x"));
  EXPECT_FALSE(ns.unlink("/x"));
  EXPECT_FALSE(ns.exists("/x"));
  // Traces recorded before the unlink still resolve.
  EXPECT_EQ(ns.inodes()[id].path, "/x");
}

TEST(Namespace, ListByPrefix) {
  Namespace ns;
  ns.create("/data/a", 0, 0, 0);
  ns.create("/data/b", 0, 0, 0);
  ns.create("/other/c", 0, 0, 0);
  EXPECT_EQ(ns.list("/data/").size(), 2u);
  EXPECT_EQ(ns.list("/").size(), 3u);
}

TEST(Namespace, TotalBytesTracksLiveFilesOnly) {
  Namespace ns;
  const FileId a = ns.create("/a", 0, 0, 0);
  ns.create("/b", 0, 0, 0);
  ns.inode(a).size = 100;
  ns.inode(*ns.lookup("/b")).size = 50;
  EXPECT_EQ(ns.total_bytes(), 150u);
  ns.unlink("/a");
  EXPECT_EQ(ns.total_bytes(), 50u);
}

cluster::PfsSpec small_pfs() {
  cluster::PfsSpec spec;
  spec.num_servers = 4;
  spec.server_bandwidth_bps = 1e9;
  spec.per_stream_bps = 1e9;
  spec.data_latency = 0;
  spec.efficiency_bytes = 64 * util::kKiB;
  spec.metadata.concurrency = 2;
  spec.metadata.base_service = 100 * sim::kUs;
  spec.metadata.interference_per_waiter = 0.1;
  spec.metadata.max_inflation = 10.0;
  spec.client_cache_bytes = util::kMiB;
  spec.client_cache_bandwidth_bps = 10e9;
  return spec;
}

TEST(ParallelFs, MetadataOpsTakeBaseServiceWhenIdle) {
  Engine eng;
  ParallelFS pfs(eng, small_pfs(), 2);
  auto op = [](Engine&, ParallelFS& fs) -> Task<void> {
    co_await fs.meta(ProcSite{0, 0}, MetaOp::kOpen, 0);
  };
  eng.spawn(op(eng, pfs));
  eng.run();
  EXPECT_EQ(eng.now(), 100 * sim::kUs);
  EXPECT_EQ(pfs.counters().meta_ops, 1u);
}

TEST(ParallelFs, MetadataStormInflatesServiceTime) {
  // 64 concurrent clients on a 2-slot MDS: later ops see a deep queue and
  // their service time inflates, so the total is superlinear vs the
  // no-interference baseline (64 * 100us / 2 slots = 3.2ms).
  Engine eng;
  ParallelFS pfs(eng, small_pfs(), 2);
  auto op = [](Engine&, ParallelFS& fs) -> Task<void> {
    co_await fs.meta(ProcSite{0, 0}, MetaOp::kOpen, 0);
  };
  for (int i = 0; i < 64; ++i) eng.spawn(op(eng, pfs));
  eng.run();
  EXPECT_GT(eng.now(), 2 * 3200 * sim::kUs);
}

TEST(ParallelFs, LargeTransfersFasterPerByteThanSmall) {
  Engine eng;
  auto spec = small_pfs();
  ParallelFS pfs(eng, spec, 2);
  Namespace& ns = pfs.ns({0, 0});
  const FileId f = ns.create("/p/gpfs1/f", 0, 0, 0);
  ns.inode(f).size = 64 * util::kMiB;

  auto io = [](ParallelFS& fs, FileId file, util::Bytes size,
               std::uint32_t count) -> Task<void> {
    IoRequest req;
    req.site = {0, 0};
    req.file = file;
    req.size = size;
    req.op_count = count;
    req.kind = IoKind::kRead;
    co_await fs.io(req);
  };

  // 64MiB in 4KiB ops vs 64MiB in 16MiB ops.
  eng.spawn(io(pfs, f, 4 * util::kKiB, 16384));
  eng.run();
  const double small_time = sim::to_seconds(eng.now());

  Engine eng2;
  ParallelFS pfs2(eng2, spec, 2);
  Namespace& ns2 = pfs2.ns({0, 0});
  const FileId f2 = ns2.create("/p/gpfs1/f", 0, 0, 0);
  ns2.inode(f2).size = 64 * util::kMiB;
  eng2.spawn(io(pfs2, f2, 16 * util::kMiB, 4));
  eng2.run();
  const double large_time = sim::to_seconds(eng2.now());

  EXPECT_GT(small_time, 5.0 * large_time);
}

TEST(ParallelFs, ClientCacheAcceleratesRereadOnSameNode) {
  Engine eng;
  ParallelFS pfs(eng, small_pfs(), 2);
  Namespace& ns = pfs.ns({0, 0});
  const FileId f = ns.create("/p/gpfs1/f", 0, 0, 0);

  auto scenario = [](Engine& e, ParallelFS& fs, FileId file,
                     double& write_sec, double& reread_sec) -> Task<void> {
    IoRequest w;
    w.site = {0, 0};
    w.file = file;
    w.size = 256 * util::kKiB;
    w.kind = IoKind::kWrite;
    fs.ns(w.site).inode(file).size = w.size;
    const sim::Time t0 = e.now();
    co_await fs.io(w);
    write_sec = sim::to_seconds(e.now() - t0);

    IoRequest r = w;
    r.kind = IoKind::kRead;
    const sim::Time t1 = e.now();
    co_await fs.io(r);
    reread_sec = sim::to_seconds(e.now() - t1);
  };
  double write_sec = 0, reread_sec = 0;
  eng.spawn(scenario(eng, pfs, f, write_sec, reread_sec));
  eng.run();
  EXPECT_EQ(pfs.counters().cache_hits, 1u);
  EXPECT_LT(reread_sec, write_sec / 2.0);
}

TEST(ParallelFs, CacheMissWhenReadFromOtherNode) {
  Engine eng;
  ParallelFS pfs(eng, small_pfs(), 2);
  Namespace& ns = pfs.ns({0, 0});
  const FileId f = ns.create("/p/gpfs1/f", 0, 0, 0);
  ns.inode(f).size = 256 * util::kKiB;

  auto scenario = [](ParallelFS& fs, FileId file) -> Task<void> {
    IoRequest w;
    w.site = {0, 0};
    w.file = file;
    w.size = 256 * util::kKiB;
    w.kind = IoKind::kWrite;
    co_await fs.io(w);
    IoRequest r = w;
    r.kind = IoKind::kRead;
    r.site = {1, 1};  // different node: no cached copy there
    co_await fs.io(r);
  };
  eng.spawn(scenario(pfs, f));
  eng.run();
  EXPECT_EQ(pfs.counters().cache_hits, 0u);
}

TEST(ParallelFs, WriteTokenRevocationOnCrossNodeWrite) {
  Engine eng;
  auto spec = small_pfs();
  spec.data_latency = 0;
  ParallelFS pfs(eng, spec, 2);
  Namespace& ns = pfs.ns({0, 0});
  const FileId f = ns.create("/p/gpfs1/f", 0, 0, 0);
  ns.inode(f).size = 8 * util::kKiB;

  auto write_from = [](ParallelFS& fs, FileId file, int node) -> Task<void> {
    IoRequest w;
    w.site = {node, node};
    w.file = file;
    w.size = 4 * util::kKiB;
    w.kind = IoKind::kWrite;
    co_await fs.io(w);
  };

  // Same-node writes: no revocation.
  auto same = [&](Engine& e) -> Task<void> {
    co_await write_from(pfs, f, 0);
    co_await write_from(pfs, f, 0);
    co_return;
  };
  eng.spawn(same(eng));
  eng.run();
  const sim::Time same_node = eng.now();

  Engine eng2;
  ParallelFS pfs2(eng2, spec, 2);
  Namespace& ns2 = pfs2.ns({0, 0});
  const FileId f2 = ns2.create("/p/gpfs1/f", 0, 0, 0);
  ns2.inode(f2).size = 8 * util::kKiB;
  auto cross = [&](Engine& e) -> Task<void> {
    co_await write_from(pfs2, f2, 0);
    co_await write_from(pfs2, f2, 1);
    co_return;
  };
  eng2.spawn(cross(eng2));
  eng2.run();
  EXPECT_GT(eng2.now(), same_node + 400 * sim::kUs);
}

TEST(ParallelFs, FreeBytesTracksGrowth) {
  Engine eng;
  auto spec = small_pfs();
  spec.capacity = 1000;
  ParallelFS pfs(eng, spec, 1);
  EXPECT_EQ(pfs.free_bytes({0, 0}), 1000u);
  pfs.note_growth({0, 0}, 600);
  EXPECT_EQ(pfs.free_bytes({0, 0}), 400u);
  pfs.note_growth({0, 0}, -200);
  EXPECT_EQ(pfs.free_bytes({0, 0}), 600u);
}

TEST(NodeLocalFs, NamespacesAreIndependentPerNode) {
  Engine eng;
  cluster::NodeLocalSpec spec;
  NodeLocalFS shm(eng, spec, 3);
  shm.ns({0, 0}).create("/dev/shm/x", 0, 0, 0);
  EXPECT_TRUE(shm.ns({0, 0}).exists("/dev/shm/x"));
  EXPECT_FALSE(shm.ns({1, 0}).exists("/dev/shm/x"));
  EXPECT_FALSE(shm.shared());
}

TEST(NodeLocalFs, CapacityIsPerNode) {
  Engine eng;
  cluster::NodeLocalSpec spec;
  spec.capacity = 1000;
  NodeLocalFS shm(eng, spec, 2);
  shm.note_growth({0, 0}, 900);
  EXPECT_EQ(shm.free_bytes({0, 0}), 100u);
  EXPECT_EQ(shm.free_bytes({1, 0}), 1000u);
}

TEST(NodeLocalFs, MuchFasterThanPfsForSmallOps) {
  Engine eng;
  cluster::NodeLocalSpec spec;
  NodeLocalFS shm(eng, spec, 1);
  auto io = [](NodeLocalFS& fs) -> Task<void> {
    auto& ns = fs.ns({0, 0});
    const FileId f = ns.create("/dev/shm/f", 0, 0, 0);
    ns.inode(f).size = 4 * util::kMiB;
    IoRequest r;
    r.site = {0, 0};
    r.file = f;
    r.size = 4 * util::kKiB;
    r.op_count = 1024;
    r.kind = IoKind::kRead;
    co_await fs.io(r);
  };
  eng.spawn(io(shm));
  eng.run();
  // 4MiB of 4KiB reads in well under a millisecond-per-op regime.
  EXPECT_LT(sim::to_seconds(eng.now()), 0.05);
}

TEST(MountTable, LongestPrefixWinsAndBoundariesRespected) {
  Engine eng;
  ParallelFS pfs(eng, small_pfs(), 1);
  cluster::NodeLocalSpec shm_spec;  // /dev/shm
  NodeLocalFS shm(eng, shm_spec, 1);
  MountTable mt;
  mt.add(pfs);
  mt.add(shm);
  EXPECT_EQ(&mt.resolve("/p/gpfs1/data/file"), &pfs);
  EXPECT_EQ(&mt.resolve("/dev/shm/tmp1"), &shm);
  EXPECT_EQ(mt.try_resolve("/p/gpfs1x/evil"), nullptr);
  EXPECT_EQ(mt.try_resolve("/unmounted/file"), nullptr);
  EXPECT_THROW(mt.resolve("/unmounted/file"), util::SimError);
}

}  // namespace
}  // namespace wasp::fs
