// Determinism contract of the parallel execution layer: fixed chunking,
// chunk-order merges, and thread-confined scenarios must make every result
// bit-identical at jobs=1 and jobs=N. Doubles are compared with ==, not
// tolerances — "close" would mean the contract is broken.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/analyzer.hpp"
#include "profile_test_util.hpp"
#include "runtime/scenario_runner.hpp"
#include "trace/log_io.hpp"
#include "util/parallel.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

// ---------------------------------------------------------------- chunking

TEST(MakeChunks, EmptyAndSingle) {
  EXPECT_TRUE(util::make_chunks(0, 64).empty());
  const auto one = util::make_chunks(10, 64);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 10u);
  EXPECT_EQ(one[0].index, 0u);
}

TEST(MakeChunks, CoversRangeContiguouslyAndEvenly) {
  for (std::size_t n : {1u, 7u, 64u, 100u, 1000u, 65537u}) {
    for (std::size_t grain : {1u, 3u, 64u, 999u}) {
      const auto chunks = util::make_chunks(n, grain);
      ASSERT_FALSE(chunks.empty());
      std::size_t expect_begin = 0;
      std::size_t min_sz = n, max_sz = 0;
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i].index, i);
        EXPECT_EQ(chunks[i].begin, expect_begin);
        EXPECT_GT(chunks[i].end, chunks[i].begin);
        min_sz = std::min(min_sz, chunks[i].size());
        max_sz = std::max(max_sz, chunks[i].size());
        expect_begin = chunks[i].end;
      }
      EXPECT_EQ(expect_begin, n);
      EXPECT_LE(max_sz - min_sz, 1u) << "n=" << n << " grain=" << grain;
      EXPECT_LE(max_sz, grain);
    }
  }
}

TEST(MakeChunks, PureFunctionOfInputs) {
  EXPECT_EQ(util::make_chunks(12345, 256).size(),
            util::make_chunks(12345, 256).size());
  const auto a = util::make_chunks(12345, 256);
  const auto b = util::make_chunks(12345, 256);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ResolveJobs, ZeroMeansDefaultNegativeClampsToOne) {
  const int saved = util::default_jobs();
  util::set_default_jobs(3);
  EXPECT_EQ(util::resolve_jobs(0), 3);
  EXPECT_EQ(util::resolve_jobs(5), 5);
  EXPECT_EQ(util::resolve_jobs(-2), 1);
  util::set_default_jobs(saved);
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersIsSequentialAscending) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<std::size_t> order;
  pool.run(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.run(round * 7 + 1, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    const int n = round * 7 + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPool, RethrowsLowestIndexFailure) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.run(64, [&](std::size_t i) {
        if (i == 3 || i == 7 || i == 50) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3");
    }
    // Pool must stay usable after a failed batch.
    std::atomic<int> ran{0};
    pool.run(16, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 16);
  }
}

TEST(ParallelMap, ResultsInChunkIndexOrder) {
  const auto ranges = util::parallel_map(
      4, 1000, 37, [](const util::ChunkRange& c) { return c; });
  const auto expect = util::make_chunks(1000, 37);
  ASSERT_EQ(ranges.size(), expect.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].index, i);
    EXPECT_EQ(ranges[i].begin, expect[i].begin);
    EXPECT_EQ(ranges[i].end, expect[i].end);
  }
}

TEST(ParallelMap, FloatingPointSumBitIdenticalAcrossJobs) {
  // Awkwardly-scaled values so reassociation WOULD change the bits.
  std::vector<double> values(10007);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& v : values) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<double>(state >> 11) * 1.1102230246251565e-16 *
        (1.0 + static_cast<double>(state % 97));
  }
  auto chunked_sum = [&](int jobs) {
    const auto partials = util::parallel_map(
        jobs, values.size(), 257, [&](const util::ChunkRange& c) {
          double s = 0.0;
          for (std::size_t i = c.begin; i < c.end; ++i) s += values[i];
          return s;
        });
    double total = 0.0;
    for (double p : partials) total += p;  // chunk-index order
    return total;
  };
  const double base = chunked_sum(1);
  for (int jobs : {2, 3, 4, 8}) {
    EXPECT_EQ(base, chunked_sum(jobs)) << "jobs=" << jobs;
  }
  EXPECT_EQ(base, chunked_sum(8));  // run-to-run
}

// ------------------------------------------------------------- ColumnStore

TEST(ColumnStore, ParallelFillMatchesSequential) {
  runtime::Simulation sim(cluster::lassen(2));
  auto out = workloads::run_with(
      sim, workloads::make_hacc(workloads::HaccParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const auto& records = sim.tracer().records();
  ASSERT_GT(records.size(), 100u);

  const auto seq = analysis::ColumnStore::from_records(records, 1);
  const auto par = analysis::ColumnStore::from_records(records, 4);
  ASSERT_EQ(seq.size(), par.size());
  ASSERT_EQ(seq.size(), records.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq.row(i) == par.row(i)) << "row " << i;
    EXPECT_TRUE(par.row(i) == records[i]) << "row " << i;
  }

  const auto pred = [](const analysis::ColumnStore& cs, std::size_t i) {
    return trace::is_io(cs.op(i)) && cs.size_col(i) > 0;
  };
  const auto s1 = seq.select(pred);
  for (int jobs : {1, 2, 4}) {
    EXPECT_EQ(s1, seq.select(pred, jobs, 113)) << "jobs=" << jobs;
  }
}

// ---------------------------------------------------------------- Analyzer
// (profile comparison helpers live in profile_test_util.hpp, shared with
// the trace-store backend tests)

TEST(AnalyzerDeterminism, ProfileBitIdenticalAcrossJobCounts) {
  for (const auto& entry : workloads::paper_workloads()) {
    SCOPED_TRACE(entry.name);
    runtime::Simulation sim(cluster::lassen(4));
    auto out = workloads::run_with(sim, entry.make_test(),
                                   advisor::RunConfig{},
                                   analysis::Analyzer::Options{});
    // Small chunk_rows so even test-scale traces span many chunks.
    const std::size_t chunk_rows =
        std::max<std::size_t>(1, sim.tracer().records().size() / 7);
    analysis::Analyzer::Options o1;
    o1.jobs = 1;
    o1.chunk_rows = chunk_rows;
    analysis::Analyzer::Options o8 = o1;
    o8.jobs = 8;

    const auto p1 = analysis::Analyzer(o1).analyze(sim.tracer());
    const auto p8 = analysis::Analyzer(o8).analyze(sim.tracer());
    expect_profiles_identical(p1, p8);

    // And again to catch run-to-run scheduling nondeterminism.
    const auto p8b = analysis::Analyzer(o8).analyze(sim.tracer());
    expect_profiles_identical(p1, p8b);
  }
}

TEST(AnalyzerDeterminism, OfflineLogBitIdenticalAcrossJobCounts) {
  runtime::Simulation sim(cluster::lassen(4));
  auto out = workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const auto log = trace::snapshot(sim.tracer());
  analysis::Analyzer::Options o1;
  o1.jobs = 1;
  o1.chunk_rows = 257;
  analysis::Analyzer::Options o8 = o1;
  o8.jobs = 8;
  expect_profiles_identical(analysis::Analyzer(o1).analyze(log),
                            analysis::Analyzer(o8).analyze(log));
}

// ---------------------------------------------------------- ScenarioRunner

TEST(ScenarioRunner, ResultsInSubmissionOrder) {
  std::vector<std::function<int()>> fns;
  for (int i = 0; i < 32; ++i) fns.push_back([i] { return i * i; });
  const auto out = runtime::ScenarioRunner(4).run<int>(fns);
  ASSERT_EQ(out.size(), fns.size());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ScenarioRunner, ConcurrentTracesMatchSequentialRecordForRecord) {
  // Each scenario owns its whole world (engine, cluster, filesystems,
  // tracer) on the thread that runs it; its trace must be bit-identical to
  // a sequential run of the same scenario.
  auto trace_of = [](std::size_t workload_index) {
    // paper_workloads() returns by value — copy the entry, don't bind a
    // reference into the temporary vector.
    const auto entry = workloads::paper_workloads()[workload_index];
    const auto workload = entry.make_test();
    runtime::Simulation sim(cluster::lassen(4));
    if (workload.setup) {
      sim.tracer().set_enabled(false);
      sim.engine().spawn(workload.setup(sim));
      sim.engine().run();
      sim.tracer().set_enabled(true);
      sim.pfs().drop_client_caches();
    }
    workload.launch(sim, advisor::RunConfig{});
    sim.engine().run();
    return sim.tracer().records();
  };

  const std::size_t n = workloads::paper_workloads().size();
  std::vector<std::vector<trace::Record>> sequential;
  for (std::size_t i = 0; i < n; ++i) sequential.push_back(trace_of(i));

  std::vector<std::function<std::vector<trace::Record>()>> fns;
  for (std::size_t i = 0; i < n; ++i) {
    fns.push_back([&trace_of, i] { return trace_of(i); });
  }
  const auto concurrent =
      runtime::ScenarioRunner(4).run<std::vector<trace::Record>>(fns);

  ASSERT_EQ(concurrent.size(), sequential.size());
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE(workloads::paper_workloads()[i].name);
    ASSERT_EQ(concurrent[i].size(), sequential[i].size());
    for (std::size_t r = 0; r < concurrent[i].size(); ++r) {
      ASSERT_TRUE(concurrent[i][r] == sequential[i][r]) << "record " << r;
    }
  }
}

TEST(ScenarioRunner, RunManyMatchesIndividualRuns) {
  std::vector<workloads::Scenario> scenarios;
  for (int nodes : {2, 4}) {
    scenarios.push_back({"hacc-" + std::to_string(nodes),
                         cluster::lassen(nodes),
                         [] {
                           return workloads::make_hacc(
                               workloads::HaccParams::test());
                         },
                         advisor::RunConfig{},
                         analysis::Analyzer::Options{},
                         {}});
  }
  const auto batch = workloads::run_many(scenarios, 2);
  ASSERT_EQ(batch.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    const auto solo = workloads::run(scenarios[i].spec, scenarios[i].make(),
                                     scenarios[i].cfg,
                                     scenarios[i].analyzer_opts);
    EXPECT_EQ(batch[i].job_seconds, solo.job_seconds);
    EXPECT_EQ(batch[i].engine_events, solo.engine_events);
    expect_profiles_identical(batch[i].profile, solo.profile);
  }
}

}  // namespace
}  // namespace wasp
