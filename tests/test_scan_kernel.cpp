// The batched columnar scan kernels vs the scalar reference row loop: the
// two map steps must produce byte-identical profiles — same doubles, same
// ordering, same everything — on both store backends, at every job count,
// and for analysis chunk sizes that deliberately misalign with the storage
// chunking (so spans get clipped at both kinds of boundary).
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "profile_test_util.hpp"
#include "trace/synthetic.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

std::string spill_dir(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Synthetic records that hit every kernel path: all interfaces (CPU/GPU
/// compute spans included), all ops (data, meta, compute, communication),
/// and file-less rows.
std::vector<trace::Record> kernel_coverage_records(std::size_t n) {
  trace::SyntheticOpts o;
  o.ifaces = 7;
  o.ops = 14;
  o.files_per_invalid = 5;
  return trace::synthetic_records(n, o);
}

/// TraceInput over raw records with row-dependent path/size callbacks: a
/// file's resolved path and size depend on its *first* row, so a kernel
/// that gets file_first_row wrong produces a visibly different profile
/// instead of silently resolving the same constant string.
analysis::TraceInput synthetic_input(std::span<const trace::Record> records) {
  analysis::TraceInput input;
  input.records = records;
  input.app_names = {"alpha", "beta", "gamma", "delta", "epsilon"};
  input.path_at = [](std::size_t i) { return "/row/" + std::to_string(i); };
  input.size_at = [](std::size_t i) -> fs::Bytes { return (i * 131) + 1; };
  // fs 0 shared, fs 1 node-local: both ScopedFile scoping branches run.
  input.fs_shared = [](std::int16_t f) { return f == 0; };
  return input;
}

analysis::WorkloadProfile profile_of(const analysis::TraceInput& input,
                                     int jobs, std::size_t chunk_rows,
                                     bool reference) {
  analysis::Analyzer::Options opts;
  opts.jobs = jobs;
  opts.chunk_rows = chunk_rows;
  opts.reference_scan = reference;
  return analysis::Analyzer(opts).analyze(input);
}

TEST(ScanKernel, MatchesReferenceOnMemoryBackend) {
  const auto records = kernel_coverage_records(10007);
  const auto input = synthetic_input(records);

  // chunk_rows values chosen to misalign with everything: 1000 splits the
  // trace mid-pattern, 97 makes every analysis chunk straddle boundaries.
  for (const std::size_t chunk_rows : {1000ul, 97ul}) {
    for (const int jobs : {1, 4}) {
      const auto ref = profile_of(input, jobs, chunk_rows, true);
      const auto ker = profile_of(input, jobs, chunk_rows, false);
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " chunk_rows=" + std::to_string(chunk_rows));
      expect_profiles_identical(ref, ker);
    }
  }

  // And the kernels stay bit-identical to themselves across job counts /
  // chunkings that share chunk_rows (the existing determinism contract).
  expect_profiles_identical(profile_of(input, 1, 1000, false),
                            profile_of(input, 4, 1000, false));
}

TEST(ScanKernel, MatchesReferenceOnSpillBackend) {
  const auto records = kernel_coverage_records(10007);

  // Storage chunks of 128 rows vs analysis chunks of 1000/97 rows: spans
  // clip at storage boundaries mid-analysis-chunk and vice versa.
  analysis::SpillColumnStore store({.dir = spill_dir("scan_kernel.spill"),
                                    .chunk_rows = 128,
                                    .max_resident_chunks = 3});
  store.append(records);
  store.finalize();
  ASSERT_GT(store.num_chunks(), 3u);

  auto input = synthetic_input(records);
  input.store = &store;

  const auto mem_ref = profile_of(synthetic_input(records), 1, 1000, true);
  for (const std::size_t chunk_rows : {1000ul, 97ul}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " chunk_rows=" + std::to_string(chunk_rows));
      const auto ker = profile_of(input, jobs, chunk_rows, false);
      expect_profiles_identical(profile_of(input, jobs, chunk_rows, true),
                                ker);
      if (chunk_rows == 1000) {
        // Same rows => same profile as the in-memory reference too.
        expect_profiles_identical(mem_ref, ker);
      }
    }
  }
}

TEST(ScanKernel, MatchesReferenceOnSimulatedWorkload) {
  // A real multi-app trace (shared + fpp files, CPU spans, barriers) rather
  // than synthetic noise: the montage test workload.
  runtime::Simulation sim(cluster::lassen(4));
  workloads::run_with(
      sim, workloads::make_montage_mpi(workloads::MontageMpiParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});

  for (const int jobs : {1, 4}) {
    analysis::Analyzer::Options ref_opts;
    ref_opts.jobs = jobs;
    ref_opts.chunk_rows = 23;  // many tiny chunks, lots of merge traffic
    analysis::Analyzer::Options ker_opts = ref_opts;
    ref_opts.reference_scan = true;
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    expect_profiles_identical(
        analysis::Analyzer(ref_opts).analyze(sim.tracer()),
        analysis::Analyzer(ker_opts).analyze(sim.tracer()));
  }
}

}  // namespace
}  // namespace wasp
