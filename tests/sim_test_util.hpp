// Shared helpers for tests that drive coroutines inside a Simulation.
#pragma once

#include <utility>
#include <vector>

#include "cluster/spec.hpp"
#include "runtime/proc.hpp"
#include "runtime/simulation.hpp"
#include "sim/task.hpp"
#include "trace/record.hpp"

namespace wasp::testutil {

/// Spawn all tasks at t=0 and run to completion.
inline void run_all(sim::Engine& eng, std::vector<sim::Task<void>> tasks) {
  for (auto& t : tasks) eng.spawn(std::move(t));
  eng.run();
}

/// Count trace records matching a predicate.
template <typename Pred>
std::size_t count_records(const trace::Tracer& tracer, Pred pred) {
  std::size_t n = 0;
  for (const auto& r : tracer.records()) {
    if (pred(r)) ++n;
  }
  return n;
}

/// Sum of `count` over matching records (true op counts, not record counts).
template <typename Pred>
std::uint64_t count_ops(const trace::Tracer& tracer, Pred pred) {
  std::uint64_t n = 0;
  for (const auto& r : tracer.records()) {
    if (pred(r)) n += r.count;
  }
  return n;
}

}  // namespace wasp::testutil
