// Bit-identity comparison helpers shared by the determinism tests. Every
// double is compared with operator== — the contract under test is that
// profiles are bit-identical across job counts and trace-store backends,
// not merely close, so tolerances would hide exactly the bugs these tests
// exist to catch.
#pragma once

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"

namespace wasp::testutil {

inline void expect_ops_identical(const analysis::OpsBreakdown& a,
                                 const analysis::OpsBreakdown& b) {
  EXPECT_EQ(a.read_ops, b.read_ops);
  EXPECT_EQ(a.write_ops, b.write_ops);
  EXPECT_EQ(a.meta_ops, b.meta_ops);
  EXPECT_EQ(a.read_bytes, b.read_bytes);
  EXPECT_EQ(a.write_bytes, b.write_bytes);
  EXPECT_EQ(a.data_sec, b.data_sec);  // bitwise: == on doubles is the point
  EXPECT_EQ(a.meta_sec, b.meta_sec);
}

inline void expect_hist_identical(const util::SizeHistogram& a,
                                  const util::SizeHistogram& b) {
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (std::size_t i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(a.count(i), b.count(i));
    EXPECT_EQ(a.bytes(i), b.bytes(i));
    EXPECT_EQ(a.seconds(i), b.seconds(i));
  }
}

/// Every field, every double with operator== — the profile must be
/// bit-identical, not merely close.
inline void expect_profiles_identical(const analysis::WorkloadProfile& a,
                                      const analysis::WorkloadProfile& b) {
  EXPECT_EQ(a.job_runtime_sec, b.job_runtime_sec);
  expect_ops_identical(a.totals, b.totals);
  EXPECT_EQ(a.io_time_fraction, b.io_time_fraction);
  EXPECT_EQ(a.io_busy_fraction, b.io_busy_fraction);
  EXPECT_EQ(a.num_procs, b.num_procs);
  EXPECT_EQ(a.num_nodes, b.num_nodes);

  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const auto& x = a.apps[i];
    const auto& y = b.apps[i];
    EXPECT_EQ(x.app, y.app);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.num_procs, y.num_procs);
    expect_ops_identical(x.ops, y.ops);
    EXPECT_EQ(x.cpu_sec, y.cpu_sec);
    EXPECT_EQ(x.gpu_sec, y.gpu_sec);
    EXPECT_EQ(x.first_event, y.first_event);
    EXPECT_EQ(x.last_event, y.last_event);
    EXPECT_EQ(x.fpp_files, y.fpp_files);
    EXPECT_EQ(x.shared_files, y.shared_files);
    EXPECT_EQ(x.interface, y.interface);
  }

  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    const auto& x = a.files[i];
    const auto& y = b.files[i];
    EXPECT_TRUE(x.key == y.key);
    EXPECT_EQ(x.node_scope, y.node_scope);
    EXPECT_EQ(x.path, y.path);
    EXPECT_EQ(x.size, y.size);
    expect_ops_identical(x.ops, y.ops);
    EXPECT_EQ(x.first_access, y.first_access);
    EXPECT_EQ(x.last_access, y.last_access);
    EXPECT_EQ(x.reader_ranks, y.reader_ranks);
    EXPECT_EQ(x.writer_ranks, y.writer_ranks);
    EXPECT_EQ(x.accessor_ranks, y.accessor_ranks);
    EXPECT_EQ(x.producer_apps, y.producer_apps);
    EXPECT_EQ(x.consumer_apps, y.consumer_apps);
  }

  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const auto& x = a.phases[i];
    const auto& y = b.phases[i];
    EXPECT_EQ(x.app, y.app);
    EXPECT_EQ(x.t0, y.t0);
    EXPECT_EQ(x.t1, y.t1);
    expect_ops_identical(x.ops, y.ops);
    EXPECT_EQ(x.dominant_size, y.dominant_size);
    EXPECT_EQ(x.ops_per_rank, y.ops_per_rank);
  }

  ASSERT_EQ(a.app_edges.size(), b.app_edges.size());
  for (std::size_t i = 0; i < a.app_edges.size(); ++i) {
    EXPECT_EQ(a.app_edges[i].producer, b.app_edges[i].producer);
    EXPECT_EQ(a.app_edges[i].consumer, b.app_edges[i].consumer);
    EXPECT_EQ(a.app_edges[i].bytes, b.app_edges[i].bytes);
    EXPECT_EQ(a.app_edges[i].files, b.app_edges[i].files);
  }

  expect_hist_identical(a.read_hist, b.read_hist);
  expect_hist_identical(a.write_hist, b.write_hist);

  EXPECT_EQ(a.timeline.bin_width, b.timeline.bin_width);
  EXPECT_EQ(a.timeline.read_bps, b.timeline.read_bps);
  EXPECT_EQ(a.timeline.write_bps, b.timeline.write_bps);

  EXPECT_EQ(a.shared_files, b.shared_files);
  EXPECT_EQ(a.fpp_files, b.fpp_files);
  EXPECT_EQ(a.sequential_fraction, b.sequential_fraction);
  EXPECT_EQ(a.size_frequencies, b.size_frequencies);
}

}  // namespace wasp::testutil
