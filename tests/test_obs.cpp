// Telemetry layer: registry semantics (sharded counters, histograms,
// gauges, CounterCell folding), snapshot/delta/JSON, span tracer B/E
// guarantees, and the IoStats-vs-registry regression that pins the spill
// store's migration onto CounterCells. The registry is process-global, so
// every check reads deltas between two snapshots rather than absolute
// values — the tests pass in one shared process or one process per test.
//
// ObsStress.* is the multi-thread counter-merge stress; the TSan ctest
// filter includes it (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "obs/obs.hpp"

#ifndef WASP_OBS_OFF

namespace wasp {
namespace {

obs::Snapshot snap() { return obs::Registry::instance().snapshot(); }

TEST(ObsRegistry, CounterAccumulatesAcrossHandles) {
  const obs::Snapshot before = snap();
  obs::Counter c = obs::Registry::instance().counter("test.obs.counter");
  c.add();
  c.add(4);
  // Same name -> same metric.
  obs::Registry::instance().counter("test.obs.counter").add(5);
  EXPECT_EQ(snap().delta(before).value("test.obs.counter"), 10u);
}

TEST(ObsRegistry, KindMismatchYieldsInertHandle) {
  const obs::Snapshot before = snap();
  obs::Registry::instance().counter("test.obs.kind").add(3);
  obs::Histogram h = obs::Registry::instance().histogram("test.obs.kind");
  h.add(7);  // inert: "test.obs.kind" is already a counter
  const obs::Snapshot d = snap().delta(before);
  EXPECT_EQ(d.value("test.obs.kind"), 3u);
  EXPECT_EQ(d.hist_count("test.obs.kind"), 0u);
}

TEST(ObsRegistry, GaugeLastWriteAndMax) {
  obs::Gauge g = obs::Registry::instance().gauge("test.obs.gauge");
  g.set(5);
  g.set(3);
  EXPECT_EQ(snap().value("test.obs.gauge"), 3u);
  g.set_max(10);
  g.set_max(7);  // below current max: no effect
  EXPECT_EQ(snap().value("test.obs.gauge"), 10u);
}

TEST(ObsRegistry, HistogramPowerOfTwoBuckets) {
  const obs::Snapshot before = snap();
  obs::Histogram h = obs::Registry::instance().histogram("test.obs.hist");
  h.add(0);     // bucket 0
  h.add(1);     // bucket 1: [1, 2)
  h.add(2);     // bucket 2: [2, 4)
  h.add(3);     // bucket 2
  h.add(1024);  // bucket 11: [1024, 2048)
  const obs::Snapshot d = snap().delta(before);
  const obs::Snapshot::Entry* e = d.find("test.obs.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 5u);
  EXPECT_EQ(e->value, 1030u);  // sum of samples
  using Bucket = std::pair<std::uint32_t, std::uint64_t>;
  const std::vector<Bucket> want = {{0, 1}, {1, 1}, {2, 2}, {11, 1}};
  EXPECT_EQ(e->buckets, want);
}

TEST(ObsRegistry, CounterCellFoldsIntoRegistryAndRetires) {
  const obs::Snapshot before = snap();
  {
    obs::CounterCell cell("test.obs.cell");
    cell.add(7);
    EXPECT_EQ(cell.value(), 7u);  // instance-local view
    EXPECT_EQ(snap().delta(before).value("test.obs.cell"), 7u);

    obs::CounterCell other("test.obs.cell");
    other.add(2);
    EXPECT_EQ(other.value(), 2u);  // cells don't see each other
    EXPECT_EQ(snap().delta(before).value("test.obs.cell"), 9u);
  }
  // Destroyed cells fold into the retired accumulator: totals stay put.
  EXPECT_EQ(snap().delta(before).value("test.obs.cell"), 9u);
}

TEST(ObsRegistry, SnapshotDeltaSubtractsCountersKeepsGauges) {
  obs::Counter c = obs::Registry::instance().counter("test.obs.delta");
  obs::Gauge g = obs::Registry::instance().gauge("test.obs.delta_gauge");
  c.add(5);
  g.set(1);
  const obs::Snapshot a = snap();
  c.add(3);
  g.set(42);
  const obs::Snapshot d = snap().delta(a);
  EXPECT_EQ(d.value("test.obs.delta"), 3u);
  EXPECT_EQ(d.value("test.obs.delta_gauge"), 42u);  // later value wins
}

TEST(ObsRegistry, WriteJsonIsWellFormedAndSorted) {
  obs::Registry::instance().counter("test.obs.json").add(1);
  std::ostringstream os;
  snap().write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\": \"wasp-telemetry-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"test.obs.json\": "), std::string::npos);
}

TEST(ObsRegistry, TimerGuardCountsOnlyWhenTimingEnabled) {
  obs::Counter c = obs::Registry::instance().counter("test.obs.timer_ns");
  const obs::Snapshot before = snap();
  {
    obs::TimerGuard t(c);  // timing disabled: no clock, no add
  }
  EXPECT_EQ(snap().delta(before).value("test.obs.timer_ns"), 0u);
  obs::Registry::set_timing_enabled(true);
  {
    obs::TimerGuard t(c);
  }
  obs::Registry::set_timing_enabled(false);
  // Elapsed is near zero but the guard always adds at least the +1 bias
  // cancellation; only assert it recorded *something* non-negative by
  // checking the counter moved or stayed equal — the real property is no
  // crash and no count when disabled, which the first check pinned.
  SUCCEED();
}

// Multi-thread counter merge: concurrent add() on one metric from many
// short-lived threads (forcing shard creation, use, and exit-time fold)
// must lose no increments. The TSan build runs this under -L sanitize.
TEST(ObsStress, CounterMergeAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  const obs::Snapshot before = snap();
  obs::Counter c = obs::Registry::instance().counter("test.obs.stress");
  obs::Histogram h =
      obs::Registry::instance().histogram("test.obs.stress_hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.add(i & 0xff);
      }
    });
  }
  // Snapshot concurrently with the writers: values are torn-free partial
  // sums, and must never exceed the final total.
  const std::uint64_t mid = snap().delta(before).value("test.obs.stress");
  for (auto& t : threads) t.join();
  const obs::Snapshot d = snap().delta(before);
  EXPECT_LE(mid, kThreads * kPerThread);
  EXPECT_EQ(d.value("test.obs.stress"), kThreads * kPerThread);
  EXPECT_EQ(d.hist_count("test.obs.stress_hist"), kThreads * kPerThread);
}

TEST(ObsStress, CounterCellsAcrossThreads) {
  const obs::Snapshot before = snap();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::CounterCell cell("test.obs.cell_stress");
      for (int i = 0; i < 50000; ++i) cell.add(1);
      // Cell destruction (fold to retired) races other threads' cells.
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(snap().delta(before).value("test.obs.cell_stress"),
            kThreads * 50000u);
}

TEST(SpanTrace, NestedSpansExportBalanced) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  tracer.set_thread_name("obs-test");
  {
    obs::Span outer("outer");
    { obs::Span inner("inner"); }
    { WASP_OBS_SPAN("macro"); }
  }
  tracer.set_enabled(false);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string j = os.str();
  tracer.clear();

  auto count = [&j](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = j.find(needle); p != std::string::npos;
         p = j.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"obs-test\""), std::string::npos);
  EXPECT_EQ(count("\"name\":\"outer\""), 2u);  // one B + one E
  EXPECT_EQ(count("\"name\":\"inner\""), 2u);
  EXPECT_EQ(count("\"name\":\"macro\""), 2u);
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
}

TEST(SpanTrace, DisabledSpansRecordNothing) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  { obs::Span s("never"); }
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  EXPECT_EQ(os.str().find("never"), std::string::npos);
}

TEST(SpanTrace, BufferCapDropsWholePairs) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.clear();
  tracer.set_max_events_per_thread(6);  // room for 3 B/E pairs per thread
  tracer.set_enabled(true);
  const std::uint64_t dropped0 = tracer.dropped_events();
  for (int i = 0; i < 10; ++i) {
    obs::Span s("capped");
  }
  tracer.set_enabled(false);
  EXPECT_GT(tracer.dropped_events(), dropped0);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string j = os.str();
  tracer.clear();
  tracer.set_max_events_per_thread(1u << 18);
  auto count = [&j](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = j.find(needle); p != std::string::npos;
         p = j.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  // Every surviving B has its E: begin() reserves the end slot.
  EXPECT_EQ(count("\"ph\":\"B\""), 3u);
  EXPECT_EQ(count("\"ph\":\"E\""), 3u);
}

// Regression for the IoStats migration: the spill store's public IoStats
// accessor and the registry's "spill.*" metrics are two views of the same
// CounterCells, so after a spilled analysis they must agree exactly. This
// is what keeps `wasp_analyze --stats` and `--telemetry` from drifting.
TEST(ObsSpillStats, IoStatsMatchesRegistrySnapshot) {
  const obs::Snapshot before = snap();
  std::vector<trace::Record> records(3000);
  std::uint64_t t = 1ull << 30;
  for (std::size_t i = 0; i < records.size(); ++i) {
    auto& r = records[i];
    r.app = static_cast<std::uint16_t>(i % 3);
    r.rank = static_cast<std::int32_t>(i % 16);
    r.node = static_cast<std::int32_t>(i % 4);
    r.iface = trace::Iface::kPosix;
    r.op = (i % 2) != 0 ? trace::Op::kWrite : trace::Op::kRead;
    r.file = {0, static_cast<fs::FileId>(i % 7)};
    r.offset = i * 4096;
    r.size = 4096;
    r.count = 1;
    t += 1000;
    r.tstart = t;
    r.tend = t + 500;
  }

  analysis::IoStats io;
  {
    analysis::SpillColumnStore store(
        {.dir = std::string(::testing::TempDir()) + "/obs_iostats.spill",
         .chunk_rows = 250,
         .max_resident_chunks = 2});
    store.append(records);
    store.finalize();
    analysis::TraceInput input;
    input.store = &store;
    input.app_names = {"a", "b", "c"};
    input.path_at = [](std::size_t) { return std::string("/f"); };
    input.size_at = [](std::size_t) -> fs::Bytes { return 0; };
    input.fs_shared = [](std::int16_t) { return true; };
    (void)analysis::Analyzer().analyze(input);
    io = store.io_stats();
    ASSERT_GT(io.chunk_loads, 0u);
    ASSERT_GT(io.bytes_written, 0u);

    const obs::Snapshot live = snap().delta(before);
    EXPECT_EQ(live.value("spill.chunk_loads"), io.chunk_loads);
    EXPECT_EQ(live.value("spill.cache_hits"), io.cache_hits);
    EXPECT_EQ(live.value("spill.evictions"), io.evictions);
    EXPECT_EQ(live.value("spill.prefetch_issued"), io.prefetch_issued);
    EXPECT_EQ(live.value("spill.prefetch_hits"), io.prefetch_hits);
    EXPECT_EQ(live.value("spill.prefetch_wasted"), io.prefetch_wasted);
    EXPECT_EQ(live.value("spill.bytes_written"), io.bytes_written);
    EXPECT_EQ(live.value("spill.bytes_read"), io.bytes_read);
    EXPECT_EQ(live.value("spill.raw_bytes"), io.raw_bytes);
  }
  // Store destroyed: its cells retired, registry totals unchanged.
  const obs::Snapshot after = snap().delta(before);
  EXPECT_EQ(after.value("spill.chunk_loads"), io.chunk_loads);
  EXPECT_EQ(after.value("spill.bytes_written"), io.bytes_written);
}

}  // namespace
}  // namespace wasp

#else  // WASP_OBS_OFF

namespace wasp {
namespace {

// The OFF build keeps the API callable and CounterCell functional; the
// registry reports nothing.
TEST(ObsRegistry, OffBuildIsInertButCallable) {
  obs::Registry::instance().counter("test.obs.off").add(5);
  obs::Registry::instance().gauge("test.obs.off_g").set(1);
  obs::Registry::instance().histogram("test.obs.off_h").add(2);
  EXPECT_TRUE(obs::Registry::instance().snapshot().entries.empty());
  EXPECT_FALSE(obs::Registry::timing_enabled());

  obs::CounterCell cell("test.obs.off_cell");
  cell.add(3);
  EXPECT_EQ(cell.value(), 3u);  // per-instance stats still work

  obs::SpanTracer::instance().set_enabled(true);
  EXPECT_FALSE(obs::SpanTracer::instance().enabled());
  { WASP_OBS_SPAN("off"); }
}

}  // namespace
}  // namespace wasp

#endif  // WASP_OBS_OFF
