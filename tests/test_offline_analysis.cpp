// Offline-analysis equivalence: analyzing a persisted LogData must produce
// the same profile as analyzing the live tracer (the wasp_analyze tool's
// correctness contract), plus IOR sanity at test scale.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "trace/log_io.hpp"
#include "workloads/ior.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

void expect_profiles_equal(const analysis::WorkloadProfile& a,
                           const analysis::WorkloadProfile& b) {
  EXPECT_DOUBLE_EQ(a.job_runtime_sec, b.job_runtime_sec);
  EXPECT_EQ(a.totals.read_ops, b.totals.read_ops);
  EXPECT_EQ(a.totals.write_ops, b.totals.write_ops);
  EXPECT_EQ(a.totals.meta_ops, b.totals.meta_ops);
  EXPECT_EQ(a.totals.read_bytes, b.totals.read_bytes);
  EXPECT_EQ(a.totals.write_bytes, b.totals.write_bytes);
  EXPECT_DOUBLE_EQ(a.io_time_fraction, b.io_time_fraction);
  EXPECT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.files.size(), b.files.size());
  EXPECT_EQ(a.phases.size(), b.phases.size());
  EXPECT_EQ(a.app_edges.size(), b.app_edges.size());
  EXPECT_EQ(a.shared_files, b.shared_files);
  EXPECT_EQ(a.fpp_files, b.fpp_files);
  EXPECT_DOUBLE_EQ(a.sequential_fraction, b.sequential_fraction);
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
    EXPECT_EQ(a.files[i].size, b.files[i].size);
    EXPECT_EQ(a.files[i].reader_ranks, b.files[i].reader_ranks);
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].name, b.apps[i].name);
    EXPECT_EQ(a.apps[i].num_procs, b.apps[i].num_procs);
  }
}

TEST(OfflineAnalysis, SnapshotProfileMatchesLiveProfile) {
  for (const auto& entry : workloads::paper_workloads()) {
    SCOPED_TRACE(entry.name);
    runtime::Simulation sim2(cluster::lassen(4));
    auto out = workloads::run_with(sim2, entry.make_test(),
                                   advisor::RunConfig{},
                                   analysis::Analyzer::Options{});
    analysis::Analyzer analyzer;
    const auto live = analyzer.analyze(sim2.tracer());
    const auto offline = analyzer.analyze(trace::snapshot(sim2.tracer()));
    expect_profiles_equal(live, offline);
  }
}

TEST(OfflineAnalysis, DiskRoundTripProfileMatches) {
  runtime::Simulation sim(cluster::lassen(2));
  auto out = workloads::run_with(
      sim, workloads::make_hacc(workloads::HaccParams::test()),
      advisor::RunConfig{}, analysis::Analyzer::Options{});
  const std::string path = std::string(::testing::TempDir()) + "/off.wtrc";
  trace::write_log(path, sim.tracer());
  analysis::Analyzer analyzer;
  const auto live = analyzer.analyze(sim.tracer());
  const auto from_disk = analyzer.analyze(trace::read_log(path));
  expect_profiles_equal(live, from_disk);
  std::remove(path.c_str());
}

TEST(Ior, TestScaleBehaves) {
  auto P = workloads::IorParams::test();
  auto [write_gbps, read_gbps] = workloads::measure_ior(cluster::tiny(2), P);
  EXPECT_GT(write_gbps, 0.0);
  EXPECT_GT(read_gbps, 0.0);

  auto out = workloads::run(cluster::tiny(2), workloads::make_ior(P));
  EXPECT_EQ(out.profile.totals.write_bytes,
            static_cast<fs::Bytes>(P.nodes) * P.ranks_per_node * P.block /
                P.transfer * P.transfer);
  EXPECT_EQ(out.profile.totals.read_bytes, out.profile.totals.write_bytes);
  EXPECT_EQ(out.profile.fpp_files,
            static_cast<std::uint64_t>(P.nodes) * P.ranks_per_node);
}

TEST(Ior, SharedFileModeUsesOneFile) {
  auto P = workloads::IorParams::test();
  P.file_per_process = false;
  auto out = workloads::run(cluster::tiny(2), workloads::make_ior(P));
  EXPECT_EQ(out.profile.files.size(), 1u);
  EXPECT_EQ(out.profile.shared_files, 1u);
}

}  // namespace
}  // namespace wasp
