// Additional engine/coroutine coverage: spawn-during-run, WaitGroup error
// propagation and reuse, gather/bcast timing, Task value semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/waitgroup.hpp"

namespace wasp::sim {
namespace {

Task<void> marker(Engine& eng, Time d, std::vector<Time>& out) {
  co_await Delay(eng, d);
  out.push_back(eng.now());
}

TEST(EngineExtra, SpawnDuringRunIsProcessed) {
  Engine eng;
  std::vector<Time> marks;
  auto spawner = [](Engine& e, std::vector<Time>& out) -> Task<void> {
    co_await Delay(e, 1 * kSec);
    e.spawn(marker(e, 2 * kSec, out));  // a drain-style background task
    out.push_back(e.now());
  };
  eng.spawn(spawner(eng, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0], 1 * kSec);
  EXPECT_EQ(marks[1], 3 * kSec);
  EXPECT_TRUE(eng.all_roots_done());
}

TEST(TaskExtra, MoveOnlyValuesPropagate) {
  Engine eng;
  auto child = [](Engine& e) -> Task<std::unique_ptr<std::string>> {
    co_await Delay(e, 1);
    co_return std::make_unique<std::string>("payload");
  };
  std::string got;
  auto parent = [&got, child](Engine& e) -> Task<void> {
    auto p = co_await child(e);
    got = *p;
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_EQ(got, "payload");
}

TEST(WaitGroupExtra, PropagatesFirstChildError) {
  Engine eng;
  auto ok = [](Engine& e) -> Task<void> { co_await Delay(e, 5); };
  auto bad = [](Engine& e) -> Task<void> {
    co_await Delay(e, 1);
    throw std::runtime_error("child failed");
  };
  bool caught = false;
  auto parent = [&](Engine& e) -> Task<void> {
    WaitGroup wg(e);
    wg.launch(ok(e));
    wg.launch(bad(e));
    wg.launch(ok(e));
    try {
      co_await wg.wait();
    } catch (const std::runtime_error& ex) {
      caught = std::string(ex.what()) == "child failed";
    }
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(WaitGroupExtra, ReusableAcrossWaves) {
  Engine eng;
  int completed = 0;
  auto work = [](Engine& e, int& n) -> Task<void> {
    co_await Delay(e, 10);
    ++n;
  };
  auto parent = [&](Engine& e) -> Task<void> {
    WaitGroup wg(e);
    for (int wave = 0; wave < 3; ++wave) {
      for (int i = 0; i < 4; ++i) wg.launch(work(e, completed));
      co_await wg.wait();
      EXPECT_EQ(wg.outstanding(), 0u);
    }
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_EQ(completed, 12);
}

TEST(WaitGroupExtra, WaitWithNoChildrenReturnsImmediately) {
  Engine eng;
  bool done = false;
  auto parent = [&done](Engine& e) -> Task<void> {
    WaitGroup wg(e);
    co_await wg.wait();
    done = true;
  };
  eng.spawn(parent(eng));
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.now(), 0u);
}

TEST(CommExtra, GatherChargesRootForAllRanks) {
  Engine eng;
  mpi::Comm comm(eng, {0, 0, 1, 1}, mpi::NetParams{1e9, 0});
  std::vector<Time> done(4);
  auto prog = [](Engine& e, mpi::Comm& c, int rank,
                 std::vector<Time>& out) -> Task<void> {
    co_await c.gather(rank, /*root=*/0, 100'000'000);  // 100MB each
    out[static_cast<std::size_t>(rank)] = e.now();
  };
  for (int r = 0; r < 4; ++r) eng.spawn(prog(eng, comm, r, done));
  eng.run();
  // Root moves 4x the data of a leaf.
  EXPECT_GT(done[0], done[1]);
  EXPECT_NEAR(to_seconds(done[0]), 0.4, 0.01);
  EXPECT_NEAR(to_seconds(done[1]), 0.1, 0.01);
}

TEST(CommExtra, ZeroByteCollectivesStillSynchronize) {
  Engine eng;
  mpi::Comm comm(eng, {0, 1}, mpi::NetParams{1e9, 1 * kUs});
  std::vector<Time> done(2);
  auto prog = [](Engine& e, mpi::Comm& c, int rank,
                 std::vector<Time>& out) -> Task<void> {
    co_await Delay(e, rank == 0 ? 0 : 5 * kSec);
    co_await c.bcast(rank, 0, 0);
    out[static_cast<std::size_t>(rank)] = e.now();
  };
  eng.spawn(prog(eng, comm, 0, done));
  eng.spawn(prog(eng, comm, 1, done));
  eng.run();
  EXPECT_GE(done[0], 5 * kSec);  // rank 0 waited for rank 1
}

}  // namespace
}  // namespace wasp::sim
