// Unit tests for the WSPCHK02 per-column codecs: widen/narrow round trips
// across signed and enum types, varint/zigzag edge values, delta and RLE
// encode/decode, and defensive rejection of corrupt payloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/chunk_codec.hpp"
#include "trace/record.hpp"
#include "util/error.hpp"

namespace wasp::analysis::codec {
namespace {

TEST(ChunkCodec, WidenNarrowRoundTripsSignedAndEnums) {
  for (std::int32_t v : {0, 1, -1, 42, -12345,
                         std::numeric_limits<std::int32_t>::min(),
                         std::numeric_limits<std::int32_t>::max()}) {
    EXPECT_EQ(narrow<std::int32_t>(widen(v)), v);
  }
  for (std::int16_t v : {std::int16_t{-1}, std::int16_t{0}, std::int16_t{7},
                         std::numeric_limits<std::int16_t>::min()}) {
    EXPECT_EQ(narrow<std::int16_t>(widen(v)), v);
  }
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::numeric_limits<std::uint64_t>::max()}) {
    EXPECT_EQ(narrow<std::uint64_t>(widen(v)), v);
  }
  EXPECT_EQ(narrow<trace::Op>(widen(trace::Op::kWrite)), trace::Op::kWrite);
  EXPECT_EQ(narrow<trace::Iface>(widen(trace::Iface::kMpiio)),
            trace::Iface::kMpiio);
  // Negative values widen to their bit pattern, never truncate.
  EXPECT_EQ(widen(std::int16_t{-1}), 0xffffull);
  EXPECT_EQ(widen(std::int32_t{-1}), 0xffffffffull);
}

TEST(ChunkCodec, VarintRoundTripsEdgeValues) {
  const std::uint64_t cases[] = {0,   1,    127,        128,
                                 255, 300,  16383,      16384,
                                 (1ull << 32) - 1,      1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : cases) put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  for (std::uint64_t v : cases) {
    EXPECT_EQ(get_varint(p, end), v);
  }
  EXPECT_EQ(p, end);
  // One byte per value <= 127, ten bytes at the top end.
  std::vector<std::uint8_t> one;
  put_varint(one, 127);
  EXPECT_EQ(one.size(), 1u);
  std::vector<std::uint8_t> ten;
  put_varint(ten, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ten.size(), 10u);
}

TEST(ChunkCodec, VarintRejectsTruncationAndOverlongEncodings) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1ull << 40);  // multi-byte
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::uint8_t* p = buf.data();
    EXPECT_THROW(get_varint(p, p + cut), util::SimError) << "cut " << cut;
  }
  // Eleven continuation bytes can never be a valid 64-bit varint.
  const std::vector<std::uint8_t> overlong(11, 0x80);
  const std::uint8_t* p = overlong.data();
  EXPECT_THROW(get_varint(p, p + overlong.size()), util::SimError);
}

TEST(ChunkCodec, ZigzagOrdersSmallMagnitudesFirst) {
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(zigzag(-2), 3u);
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

TEST(ChunkCodec, DeltaRoundTripsAndCompressesMonotoneColumns) {
  // A monotone "tstart"-like column with small steps.
  std::vector<std::uint64_t> vals;
  std::uint64_t t = 1ull << 50;
  for (int i = 0; i < 1000; ++i) {
    t += 17 + static_cast<std::uint64_t>(i % 5);
    vals.push_back(t);
  }
  const auto enc = encode_delta(vals.data(), vals.size());
  // ~2 bytes/value after the first: far below the 8-byte raw footprint.
  EXPECT_LT(enc.size(), vals.size() * 3);
  std::vector<std::uint64_t> out(vals.size());
  decode_delta(enc.data(), enc.size(), out.data(), out.size());
  EXPECT_EQ(out, vals);
}

TEST(ChunkCodec, DeltaHandlesWrapAndExtremes) {
  const std::vector<std::uint64_t> vals = {
      std::numeric_limits<std::uint64_t>::max(), 0, 5,
      std::numeric_limits<std::uint64_t>::max(), 1, 1};
  const auto enc = encode_delta(vals.data(), vals.size());
  std::vector<std::uint64_t> out(vals.size());
  decode_delta(enc.data(), enc.size(), out.data(), out.size());
  EXPECT_EQ(out, vals);
}

TEST(ChunkCodec, DeltaRejectsTruncatedAndTrailingPayloads) {
  const std::vector<std::uint64_t> vals = {10, 20, 30, 40};
  const auto enc = encode_delta(vals.data(), vals.size());
  std::vector<std::uint64_t> out(vals.size());
  // Truncated: fewer bytes than values.
  EXPECT_THROW(decode_delta(enc.data(), enc.size() - 1, out.data(), 4),
               util::SimError);
  // Trailing garbage after the expected count.
  auto padded = enc;
  padded.push_back(0);
  EXPECT_THROW(decode_delta(padded.data(), padded.size(), out.data(), 4),
               util::SimError);
}

TEST(ChunkCodec, RleRoundTripsAndCollapsesRuns) {
  std::vector<std::uint64_t> vals(5000, 3);
  for (std::size_t i = 2000; i < 3000; ++i) vals[i] = 7;
  const auto enc = encode_rle(vals.data(), vals.size());
  EXPECT_LT(enc.size(), 16u);  // three (run, value) pairs
  std::vector<std::uint64_t> out(vals.size());
  decode_rle(enc.data(), enc.size(), out.data(), out.size());
  EXPECT_EQ(out, vals);

  // Worst case (no runs) still round-trips.
  std::vector<std::uint64_t> mixed;
  for (std::uint64_t i = 0; i < 257; ++i) mixed.push_back(i * 1315423911u);
  const auto enc2 = encode_rle(mixed.data(), mixed.size());
  std::vector<std::uint64_t> out2(mixed.size());
  decode_rle(enc2.data(), enc2.size(), out2.data(), out2.size());
  EXPECT_EQ(out2, mixed);
}

TEST(ChunkCodec, RleRejectsMalformedRuns) {
  std::vector<std::uint64_t> out(10);
  // Run length 0 is never produced by the encoder.
  std::vector<std::uint8_t> zero_run;
  put_varint(zero_run, 0);
  put_varint(zero_run, 42);
  EXPECT_THROW(decode_rle(zero_run.data(), zero_run.size(), out.data(), 10),
               util::SimError);
  // Run overflowing the expected row count.
  std::vector<std::uint8_t> too_long;
  put_varint(too_long, 11);
  put_varint(too_long, 42);
  EXPECT_THROW(decode_rle(too_long.data(), too_long.size(), out.data(), 10),
               util::SimError);
  // Payload ends before producing all rows.
  std::vector<std::uint8_t> short_payload;
  put_varint(short_payload, 4);
  put_varint(short_payload, 42);
  EXPECT_THROW(
      decode_rle(short_payload.data(), short_payload.size(), out.data(), 10),
      util::SimError);
}

}  // namespace
}  // namespace wasp::analysis::codec
