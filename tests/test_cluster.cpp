// Cluster preset sanity: the Lassen constants the whole calibration rests
// on, the Cori variant, and spec arithmetic.
#include <gtest/gtest.h>

#include "cluster/spec.hpp"

namespace wasp::cluster {
namespace {

TEST(Presets, LassenMatchesThePaperTestbed) {
  const auto c = lassen(32);
  EXPECT_EQ(c.name, "lassen");
  EXPECT_EQ(c.nodes, 32);
  EXPECT_EQ(c.node.cpu_cores, 40);
  EXPECT_EQ(c.node.gpus, 4);
  EXPECT_EQ(c.node.memory, 256 * util::kGiB);
  EXPECT_EQ(c.pfs.mount, "/p/gpfs1");
  EXPECT_EQ(c.pfs.capacity, 24ULL * 1024 * util::kTiB);  // 24 PiB
  // The Table IX envelope: ~64GB/s aggregate.
  EXPECT_NEAR(c.pfs.server_bandwidth_bps * c.pfs.num_servers, 64e9, 2e9);
  // 100 Gb/s EDR InfiniBand.
  EXPECT_DOUBLE_EQ(c.nic.bandwidth_bps, 12.5e9);
  // No shared burst buffer on Lassen (Table II: NA).
  EXPECT_FALSE(c.shared_bb.has_value());
  // /dev/shm and /tmp tiers.
  ASSERT_EQ(c.node_local.size(), 2u);
  EXPECT_EQ(c.node_local[0].mount, "/dev/shm");
  EXPECT_EQ(c.node_local[1].mount, "/tmp");
  // JAG's Table VIII: 64 parallel ops, 32GB/s per node.
  EXPECT_EQ(c.node_local[0].parallel_ops, 64u);
  EXPECT_DOUBLE_EQ(c.node_local[0].bandwidth_bps, 32e9);
}

TEST(Presets, CoriHasDataWarpAndNoGpus) {
  const auto c = cori(16);
  EXPECT_EQ(c.nodes, 16);
  EXPECT_EQ(c.node.gpus, 0);
  ASSERT_TRUE(c.shared_bb.has_value());
  EXPECT_EQ(c.shared_bb->mount, "/p/bb");
  // DataWarp-class aggregate (~1.7TB/s).
  EXPECT_GT(c.shared_bb->server_bandwidth_bps * c.shared_bb->num_servers,
            1.0e12);
  EXPECT_EQ(c.pfs.name, "lustre");
}

TEST(Presets, TinyIsSmallAndFast) {
  const auto c = tiny();
  EXPECT_LE(c.nodes, 4);
  EXPECT_LE(c.node.cpu_cores, 4);
  EXPECT_FALSE(c.shared_bb.has_value());
}

TEST(Spec, TotalsArithmetic) {
  auto c = lassen(8);
  EXPECT_EQ(c.total_cores(), 8 * 40);
  EXPECT_EQ(c.total_gpus(), 8 * 4);
}

TEST(Spec, NodeCountParameterPropagates) {
  for (int n : {1, 32, 256}) {
    EXPECT_EQ(lassen(n).nodes, n);
    EXPECT_EQ(cori(n).nodes, n);
  }
}

}  // namespace
}  // namespace wasp::cluster
