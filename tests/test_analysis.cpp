// Analyzer tests: phases, histograms, dependency graphs, timelines,
// sequentiality and the I/O-time metrics — driven through real simulated
// I/O so the records carry realistic timing.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "io/posix.hpp"
#include "sim_test_util.hpp"

namespace wasp::analysis {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

TEST(UnionSeconds, MergesOverlapsAndGaps) {
  EXPECT_DOUBLE_EQ(Analyzer::union_seconds({}), 0.0);
  EXPECT_DOUBLE_EQ(
      Analyzer::union_seconds({{0, sim::kSec}, {2 * sim::kSec, 3 * sim::kSec}}),
      2.0);
  EXPECT_DOUBLE_EQ(Analyzer::union_seconds({{0, 2 * sim::kSec},
                                            {sim::kSec, 3 * sim::kSec}}),
                   3.0);
  // Nested interval adds nothing.
  EXPECT_DOUBLE_EQ(Analyzer::union_seconds({{0, 4 * sim::kSec},
                                            {sim::kSec, 2 * sim::kSec}}),
                   4.0);
}

TEST(ColumnStore, RoundTripsRecords) {
  trace::Record r;
  r.app = 2;
  r.rank = 7;
  r.node = 1;
  r.iface = trace::Iface::kStdio;
  r.op = trace::Op::kWrite;
  r.file = {0, 42};
  r.offset = 100;
  r.size = 4096;
  r.count = 8;
  r.tstart = 5;
  r.tend = 15;
  const std::vector<trace::Record> records = {r};
  auto cs = ColumnStore::from_records(records);
  ASSERT_EQ(cs.size(), 1u);
  const auto back = cs.row(0);
  EXPECT_EQ(back.app, r.app);
  EXPECT_EQ(back.rank, r.rank);
  EXPECT_EQ(back.file, r.file);
  EXPECT_EQ(back.count, r.count);
  EXPECT_EQ(cs.total_bytes(0), 4096u * 8);
}

TEST(ColumnStore, SelectFilters) {
  std::vector<trace::Record> records(5);
  for (std::size_t i = 0; i < 5; ++i) {
    records[i].rank = static_cast<std::int32_t>(i);
  }
  auto cs = ColumnStore::from_records(records);
  auto idx = cs.select([](const ColumnStore& c, std::size_t i) {
    return c.rank(i) >= 3;
  });
  EXPECT_EQ(idx, (std::vector<std::size_t>{3, 4}));
}

struct AnalysisFixture : ::testing::Test {
  AnalysisFixture() : sim(cluster::tiny(2)) {}

  WorkloadProfile analyze(Analyzer::Options opts = {}) {
    return Analyzer(opts).analyze(sim.tracer());
  }

  Simulation sim;
};

Task<void> two_phase_prog(Simulation& s, std::uint16_t a) {
  Proc p(s, a, 0, 0);
  io::Posix posix(p);
  // Phase 1: write.
  auto f = co_await posix.open("/p/gpfs1/a", io::OpenMode::kWrite);
  co_await posix.write(f, util::kMiB, 4);
  co_await posix.close(f);
  // Long compute gap.
  co_await p.compute(10 * sim::kSec);
  // Phase 2: read back.
  auto g = co_await posix.open("/p/gpfs1/a", io::OpenMode::kRead);
  co_await posix.read(g, util::kMiB, 4);
  co_await posix.close(g);
}

TEST_F(AnalysisFixture, PhaseDetectionSplitsOnGaps) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(two_phase_prog(sim, app));
  sim.engine().run();
  Analyzer::Options opts;
  opts.phase_gap = 1 * sim::kSec;
  auto profile = analyze(opts);
  ASSERT_EQ(profile.phases.size(), 2u);
  EXPECT_GT(profile.phases[0].ops.write_bytes, 0u);
  EXPECT_GT(profile.phases[1].ops.read_bytes, 0u);
  EXPECT_LT(profile.phases[0].t1, profile.phases[1].t0);
}

TEST_F(AnalysisFixture, SinglePhaseWhenGapThresholdLarge) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(two_phase_prog(sim, app));
  sim.engine().run();
  Analyzer::Options opts;
  opts.phase_gap = 60 * sim::kSec;
  auto profile = analyze(opts);
  EXPECT_EQ(profile.phases.size(), 1u);
}

TEST_F(AnalysisFixture, OpsBreakdownAndBytes) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(two_phase_prog(sim, app));
  sim.engine().run();
  auto profile = analyze();
  EXPECT_EQ(profile.totals.write_ops, 4u);
  EXPECT_EQ(profile.totals.read_ops, 4u);
  EXPECT_EQ(profile.totals.meta_ops, 4u);  // 2x open + 2x close
  EXPECT_EQ(profile.totals.write_bytes, 4 * util::kMiB);
  EXPECT_EQ(profile.totals.read_bytes, 4 * util::kMiB);
  EXPECT_EQ(profile.num_procs, 1);
}

TEST_F(AnalysisFixture, FileStatsTrackSharingAndDataflow) {
  const auto writer = sim.tracer().register_app("producer");
  const auto reader = sim.tracer().register_app("consumer");
  auto wprog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/flow", io::OpenMode::kWrite);
    co_await posix.write(f, 64 * util::kKiB, 1);
    co_await posix.close(f);
  };
  auto rprog = [](Simulation& s, std::uint16_t a, int rank) -> Task<void> {
    Proc p(s, a, rank, 1);
    co_await p.compute(5 * sim::kSec);  // after the producer
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/flow", io::OpenMode::kRead);
    co_await posix.read(f, 64 * util::kKiB, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(wprog(sim, writer));
  sim.engine().spawn(rprog(sim, reader, 1));
  sim.engine().spawn(rprog(sim, reader, 2));
  sim.engine().run();

  auto profile = analyze();
  ASSERT_EQ(profile.files.size(), 1u);
  const auto& f = profile.files.front();
  EXPECT_EQ(f.path, "/p/gpfs1/flow");
  EXPECT_EQ(f.writer_ranks, 1u);
  EXPECT_EQ(f.reader_ranks, 2u);
  EXPECT_TRUE(f.shared());
  ASSERT_EQ(profile.app_edges.size(), 1u);
  EXPECT_EQ(profile.apps[profile.app_edges[0].producer].name, "producer");
  EXPECT_EQ(profile.apps[profile.app_edges[0].consumer].name, "consumer");
  EXPECT_EQ(profile.shared_files, 1u);
  EXPECT_EQ(profile.fpp_files, 0u);
}

TEST_F(AnalysisFixture, NodeLocalFilesAreScopedPerNode) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a, int node) -> Task<void> {
    Proc p(s, a, node, node);
    io::Posix posix(p);
    auto f = co_await posix.open("/dev/shm/same_name", io::OpenMode::kWrite);
    co_await posix.write(f, 1024, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app, 0));
  sim.engine().spawn(prog(sim, app, 1));
  sim.engine().run();
  auto profile = analyze();
  // Same path, same inode id, but two distinct files (one per node) —
  // both FPP, not one shared file.
  EXPECT_EQ(profile.files.size(), 2u);
  EXPECT_EQ(profile.fpp_files, 2u);
  EXPECT_EQ(profile.shared_files, 0u);
}

TEST_F(AnalysisFixture, HistogramBucketsBySizeWithCounts) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/h", io::OpenMode::kWrite);
    co_await posix.write(f, 1024, 100);      // <4KB bucket
    co_await posix.write(f, 2 * util::kMiB, 3);  // <16MB bucket
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  auto profile = analyze();
  EXPECT_EQ(profile.write_hist.count(0), 100u);
  EXPECT_EQ(profile.write_hist.count(3), 3u);
  EXPECT_GT(profile.write_hist.bandwidth(3),
            profile.write_hist.bandwidth(0));
}

TEST_F(AnalysisFixture, SequentialFractionDetectsRandomAccess) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/rnd", io::OpenMode::kWrite);
    co_await posix.write(f, 64 * util::kKiB, 16);
    co_await posix.close(f);
    auto g = co_await posix.open("/p/gpfs1/rnd", io::OpenMode::kRead);
    // Stride backwards: every read breaks the sequential chain.
    for (int i = 15; i >= 0; --i) {
      co_await posix.pread(g, static_cast<fs::Bytes>(i) * 64 * util::kKiB,
                           64 * util::kKiB, 1);
    }
    co_await posix.close(g);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
  auto profile = analyze();
  EXPECT_LT(profile.sequential_fraction, 0.7);
}

TEST_F(AnalysisFixture, TimelineConservesBytes) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(two_phase_prog(sim, app));
  sim.engine().run();
  Analyzer::Options opts;
  opts.timeline_bin = 100 * sim::kMs;
  auto profile = analyze(opts);
  const double bin_sec = sim::to_seconds(profile.timeline.bin_width);
  double read_bytes = 0;
  double write_bytes = 0;
  for (std::size_t i = 0; i < profile.timeline.num_bins(); ++i) {
    read_bytes += profile.timeline.read_bps[i] * bin_sec;
    write_bytes += profile.timeline.write_bps[i] * bin_sec;
  }
  EXPECT_NEAR(read_bytes, static_cast<double>(profile.totals.read_bytes),
              static_cast<double>(profile.totals.read_bytes) * 0.01);
  EXPECT_NEAR(write_bytes, static_cast<double>(profile.totals.write_bytes),
              static_cast<double>(profile.totals.write_bytes) * 0.01);
}

TEST_F(AnalysisFixture, EmptyTraceYieldsEmptyProfile) {
  auto profile = analyze();
  EXPECT_EQ(profile.totals.total_ops(), 0u);
  EXPECT_EQ(profile.apps.size(), 0u);
  EXPECT_EQ(profile.job_runtime_sec, 0.0);
}

TEST_F(AnalysisFixture, IoTimeFractionBoundedByOne) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(two_phase_prog(sim, app));
  sim.engine().run();
  auto profile = analyze();
  EXPECT_GT(profile.io_time_fraction, 0.0);
  EXPECT_LE(profile.io_time_fraction, 1.0);
  EXPECT_GT(profile.io_busy_fraction, 0.0);
  EXPECT_LE(profile.io_busy_fraction, 1.0);
}

TEST(PhaseLabel, FrequencyClassification) {
  Phase ph;
  ph.ops_per_rank = 1.0;
  EXPECT_EQ(ph.frequency_label(), "1 op");
  ph.ops_per_rank = 7.0;
  ph.dominant_size = 16 * util::kMiB;
  EXPECT_EQ(ph.frequency_label(), "7 ops/rank");
  ph.ops_per_rank = 500;
  ph.dominant_size = util::kMiB;
  ph.t0 = 0;
  ph.t1 = sim::seconds(300);
  EXPECT_EQ(ph.frequency_label(), "Iterative (1.05MB)");
  ph.t1 = sim::seconds(5);
  ph.dominant_size = 64 * util::kKiB;
  EXPECT_EQ(ph.frequency_label(), "Bulk (65.5KB)");
}

}  // namespace
}  // namespace wasp::analysis
