// The pattern compilers' contract: replaying a compiled JobPattern through
// the generic replayer produces a trace byte-identical to the original
// hand-written imperative launch (kept as `launch_reference`), and
// therefore identical profiles — across workloads, run configs, trace
// backends, and scenario-runner job counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "advisor/pattern_rewrites.hpp"
#include "pattern/replayer.hpp"
#include "workloads/ior.hpp"
#include "workloads/registry.hpp"

namespace wasp::workloads {
namespace {

cluster::ClusterSpec test_cluster(int nodes = 4) {
  auto spec = cluster::lassen(nodes);
  spec.node.cpu_cores = 8;
  return spec;
}

/// The same workload with the imperative oracle as its launch path.
Workload reference_of(Workload w) {
  EXPECT_TRUE(static_cast<bool>(w.launch_reference));
  w.launch = w.launch_reference;
  return w;
}

struct TracedRun {
  RunOutput out;
  std::vector<trace::Record> records;
  std::vector<std::string> apps;
};

TracedRun traced_run(const Workload& w, const advisor::RunConfig& cfg) {
  runtime::Simulation sim(test_cluster());
  TracedRun r;
  r.out = run_with(sim, w, cfg, analysis::Analyzer::Options{});
  r.records = sim.tracer().records();
  for (std::size_t a = 0; a < sim.tracer().num_apps(); ++a) {
    r.apps.push_back(sim.tracer().app_name(static_cast<std::uint16_t>(a)));
  }
  return r;
}

void expect_byte_identical(const Workload& w, const advisor::RunConfig& cfg) {
  const TracedRun replayed = traced_run(w, cfg);
  const TracedRun reference = traced_run(reference_of(w), cfg);
  EXPECT_EQ(replayed.apps, reference.apps);
  ASSERT_EQ(replayed.records.size(), reference.records.size());
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    if (!(replayed.records[i] == reference.records[i])) {
      const auto& a = replayed.records[i];
      const auto& b = reference.records[i];
      FAIL() << "record " << i << " diverges: replay(app=" << a.app
             << " rank=" << a.rank << " op=" << static_cast<int>(a.op)
             << " off=" << a.offset << " size=" << a.size
             << " count=" << a.count << " t=" << a.tstart << ".." << a.tend
             << ") vs reference(app=" << b.app << " rank=" << b.rank
             << " op=" << static_cast<int>(b.op) << " off=" << b.offset
             << " size=" << b.size << " count=" << b.count << " t="
             << b.tstart << ".." << b.tend << ")";
    }
  }
  EXPECT_EQ(replayed.out.job_seconds, reference.out.job_seconds);
  EXPECT_EQ(replayed.out.engine_events, reference.out.engine_events);
  EXPECT_EQ(replayed.out.characterization.to_yaml(),
            reference.out.characterization.to_yaml());
}

TEST(PatternEquivalence, AllSixWorkloadsBaselineConfig) {
  for (const auto& entry : paper_workloads()) {
    SCOPED_TRACE(entry.id);
    expect_byte_identical(entry.make_test(), advisor::RunConfig{});
  }
}

TEST(PatternEquivalence, IorBenchmark) {
  expect_byte_identical(make_ior(IorParams::test()), advisor::RunConfig{});
  auto P = IorParams::test();
  P.file_per_process = false;
  P.read_back = true;
  expect_byte_identical(make_ior(P), advisor::RunConfig{});
}

// The compilers consume the RunConfig, so equivalence must survive the
// advisor's knobs (§IV-D) too — each workload with the configuration its
// case study turns on.
TEST(PatternEquivalence, HaccCompressedAsyncDrain) {
  advisor::RunConfig cfg;
  cfg.compress_checkpoints = true;
  cfg.compress_on_gpu = true;
  cfg.async_checkpoint_drain = true;
  expect_byte_identical(make_hacc(HaccParams::test()), cfg);
}

TEST(PatternEquivalence, CosmoflowChunkedAndPreloaded) {
  advisor::RunConfig cfg;
  cfg.hdf5_chunking = true;
  cfg.preload_input_to_node_local = true;
  expect_byte_identical(make_cosmoflow(CosmoflowParams::test()), cfg);
}

TEST(PatternEquivalence, JagLargeStdioBuffer) {
  advisor::RunConfig cfg;
  cfg.stdio_buffer = util::kMiB;
  expect_byte_identical(make_jag(JagParams::test()), cfg);
}

TEST(PatternEquivalence, MontageMpiShmIntermediates) {
  advisor::RunConfig cfg;
  cfg.intermediates_to_node_local = true;
  cfg.stdio_buffer = 64 * util::kKiB;
  expect_byte_identical(make_montage_mpi(MontageMpiParams::test()), cfg);
}

TEST(PatternEquivalence, MontagePegasusLocalityAware) {
  advisor::RunConfig cfg;
  cfg.locality_aware_placement = true;
  cfg.stdio_buffer = 64 * util::kKiB;
  expect_byte_identical(make_montage_pegasus(MontagePegasusParams::test()),
                        cfg);
}

// Replayed runs through the spill-to-disk trace backend must match the
// in-memory reference profile (the backends are profile-identical by
// contract; the replayer must not disturb that).
TEST(PatternEquivalence, SpillBackendMatchesReferenceProfile) {
  runtime::SpillPolicy policy;
  policy.dir = ::testing::TempDir() + "pattern_spill";
  policy.chunk_rows = 256;
  policy.max_resident_chunks = 2;
  for (const auto& entry : {paper_workloads()[1], paper_workloads()[4]}) {
    SCOPED_TRACE(entry.id);
    runtime::Simulation spill_sim(test_cluster());
    auto spilled = run_spilled(spill_sim, entry.make_test(),
                               advisor::RunConfig{},
                               analysis::Analyzer::Options{}, policy,
                               entry.id);
    auto reference = run(test_cluster(), reference_of(entry.make_test()));
    EXPECT_EQ(spilled.characterization.to_yaml(),
              reference.characterization.to_yaml());
    EXPECT_EQ(spilled.job_seconds, reference.job_seconds);
  }
}

// run_many must stay bit-identical whether the replayed scenarios execute
// sequentially or on four worker threads.
TEST(PatternEquivalence, RunManyIdenticalAcrossJobCounts) {
  std::vector<Scenario> scenarios;
  for (const auto& entry : paper_workloads()) {
    Scenario s;
    s.name = entry.id;
    s.spec = test_cluster();
    s.make = entry.make_test;
    scenarios.push_back(std::move(s));
  }
  auto one = run_many(scenarios, 1);
  auto four = run_many(scenarios, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(one[i].job_seconds, four[i].job_seconds);
    EXPECT_EQ(one[i].characterization.to_yaml(),
              four[i].characterization.to_yaml());
    auto reference = run(test_cluster(),
                         reference_of(scenarios[i].make()));
    EXPECT_EQ(one[i].characterization.to_yaml(),
              reference.characterization.to_yaml());
  }
}

// §IV-D.1 as a pure IR mutation: applying the shm-preload rewrite to the
// compiled CosmoFlow pattern must reproduce the Fig. 7 speedup direction
// (training reads move off the PFS, the job gets faster), and must match
// what the compiler emits when the RunConfig asks for preloading.
TEST(PatternEquivalence, CosmoflowPreloadRewriteReproducesFig7Direction) {
  auto w = make_cosmoflow(CosmoflowParams::test());
  runtime::Simulation compile_sim(test_cluster());
  auto baseline_pat = w.compile(compile_sim, advisor::RunConfig{});

  advisor::PreloadSpec spec;
  ASSERT_TRUE(
      advisor::preload_spec_from_meta(baseline_pat, "/dev/shm", &spec));
  auto rewritten = baseline_pat;
  advisor::apply_preload(rewritten, spec);

  // The rewrite equals recompiling with the knob on.
  advisor::RunConfig preload_cfg;
  preload_cfg.preload_input_to_node_local = true;
  runtime::Simulation compile_sim2(test_cluster());
  EXPECT_EQ(pattern::to_yaml(rewritten),
            pattern::to_yaml(w.compile(compile_sim2, preload_cfg)));

  auto replay_pattern = [&](const pattern::JobPattern& pat) {
    Workload v;
    v.decl = w.decl;
    v.setup = w.setup;
    v.launch = [&pat](runtime::Simulation& sim, const advisor::RunConfig&) {
      pattern::replay(sim, pat);
    };
    return run(test_cluster(), v);
  };
  auto base = replay_pattern(baseline_pat);
  auto fast = replay_pattern(rewritten);
  // Fig. 7: node-local training reads shrink both the job and its I/O
  // share of runtime.
  EXPECT_LT(fast.job_seconds, base.job_seconds);
  EXPECT_LT(fast.profile.io_time_fraction * fast.job_seconds,
            base.profile.io_time_fraction * base.job_seconds);
}

// What-if rewrites preserve total bytes while changing op shape.
TEST(PatternRewrite, TransferSizeKeepsBytes) {
  auto w = make_hacc(HaccParams::test());
  runtime::Simulation compile_sim(test_cluster());
  auto pat = w.compile(compile_sim, advisor::RunConfig{});
  auto rewritten = pat;
  const int changed = advisor::set_transfer_size(rewritten, util::kMiB);
  EXPECT_GT(changed, 0);

  auto run_pattern = [&](const pattern::JobPattern& p) {
    Workload v;
    v.decl = w.decl;
    v.setup = w.setup;
    v.launch = [&p](runtime::Simulation& sim, const advisor::RunConfig&) {
      pattern::replay(sim, p);
    };
    return run(test_cluster(), v);
  };
  auto base = run_pattern(pat);
  auto variant = run_pattern(rewritten);
  EXPECT_EQ(variant.profile.totals.io_bytes(),
            base.profile.totals.io_bytes());
  EXPECT_NE(variant.profile.totals.total_ops(),
            base.profile.totals.total_ops());
}

TEST(PatternRewrite, InterfaceSwapRespectsPinnedHandles) {
  auto w = make_jag(JagParams::test());
  runtime::Simulation compile_sim(test_cluster());
  auto pat = w.compile(compile_sim, advisor::RunConfig{});
  auto rewritten = pat;
  // JAG's dataset handles are pinned by scattered reads and wrap seeks;
  // only the plain posix checkpoint chain may move to stdio.
  const int changed =
      advisor::set_interface(rewritten, pattern::Layer::kStdio);
  EXPECT_GT(changed, 0);
  Workload v;
  v.decl = w.decl;
  v.setup = w.setup;
  v.launch = [&rewritten](runtime::Simulation& sim,
                          const advisor::RunConfig&) {
    pattern::replay(sim, rewritten);
  };
  auto out = run(test_cluster(), v);
  EXPECT_GT(out.profile.totals.io_bytes(), 0u);
}

}  // namespace
}  // namespace wasp::workloads
