// Pattern IR unit tests: the expression mini-language, the canonical YAML
// round trip (dump -> load -> dump is byte-identical), and diagnostics on
// malformed input.
#include <gtest/gtest.h>

#include "pattern/pattern.hpp"
#include "util/error.hpp"
#include "workloads/registry.hpp"

namespace wasp::pattern {
namespace {

TEST(PatternExpr, EvaluatesLaneEnvironment) {
  Env env;
  env.set("rank", 5);
  env.set("node", 2);
  EvalContext ctx{&env, nullptr};
  EXPECT_EQ(Expr("rank * 3 + node").eval(ctx), 17);
  EXPECT_EQ(Expr("max(rank - 7, 1)").eval(ctx), 1);
  EXPECT_EQ(Expr("min(rank, node)").eval(ctx), 2);
  EXPECT_EQ(Expr("ceil_div(rank, node)").eval(ctx), 3);
  EXPECT_EQ(Expr("7 / 2").eval(ctx), 3);  // truncating division
  EXPECT_EQ(Expr("-7 / 2").eval(ctx), -3);
  EXPECT_EQ(Expr("rank == 5 && node < 3").eval(ctx), 1);
  EXPECT_EQ(Expr("rank != 5 || node >= 9").eval(ctx), 0);
}

TEST(PatternExpr, SizeOfExpandsTemplateAndAsksProvider) {
  Env env;
  env.set("rank", 3);
  EvalContext ctx{&env, [](const std::string& path) -> std::int64_t {
                    EXPECT_EQ(path, "/p/x/3.ckpt");
                    return 4096;
                  }};
  EXPECT_EQ(Expr("size_of(\"/p/x/{rank}.ckpt\") / 1024").eval(ctx), 4);
  EXPECT_EQ(expand("/p/x/{rank + 1}.out", ctx), "/p/x/4.out");
}

TEST(PatternExpr, RejectsMalformedSource) {
  EXPECT_THROW(Expr("1 +"), util::SimError);
  EXPECT_THROW(Expr("max(1)"), util::SimError);
  EXPECT_THROW(Expr("(2 * 3"), util::SimError);
  EXPECT_THROW(Expr("size_of(rank)"), util::SimError);
}

TEST(PatternExpr, EvalErrorsAreDiagnosed) {
  Env env;
  EvalContext ctx{&env, nullptr};
  EXPECT_THROW(Expr("bogus_var + 1").eval(ctx), util::SimError);
  EXPECT_THROW(Expr("1 / 0").eval(ctx), util::SimError);
  EXPECT_THROW(Expr().eval(ctx), util::SimError);
  // size_of without a provider.
  EXPECT_THROW(Expr("size_of(\"/p/x\")").eval(ctx), util::SimError);
}

// Every workload compiler's output must survive the YAML round trip
// byte-identically: dump -> load -> dump reproduces the first dump.
TEST(PatternYaml, CompiledPatternsRoundTripByteIdentical) {
  auto spec = cluster::lassen(4);
  spec.node.cpu_cores = 8;
  for (const auto& entry : workloads::paper_workloads()) {
    SCOPED_TRACE(entry.id);
    runtime::Simulation sim(spec);
    auto w = entry.make_test();
    ASSERT_TRUE(static_cast<bool>(w.compile));
    const auto pat = w.compile(sim, advisor::RunConfig{});
    EXPECT_EQ(pat.name, entry.id);
    const std::string once = to_yaml(pat);
    const JobPattern loaded = pattern_from_yaml(once);
    EXPECT_EQ(to_yaml(loaded), once);
  }
}

TEST(PatternYaml, RoundTripPreservesStructure) {
  runtime::Simulation sim(cluster::lassen(2));
  auto w = workloads::make_montage_pegasus(
      workloads::MontagePegasusParams::test());
  const auto pat = w.compile(sim, advisor::RunConfig{});
  const JobPattern loaded = pattern_from_yaml(to_yaml(pat));
  EXPECT_EQ(loaded.name, pat.name);
  EXPECT_EQ(loaded.apps, pat.apps);
  EXPECT_EQ(loaded.comms.size(), pat.comms.size());
  EXPECT_EQ(loaded.groups.size(), pat.groups.size());
  ASSERT_EQ(loaded.dag.stages.size(), pat.dag.stages.size());
  for (std::size_t i = 0; i < pat.dag.stages.size(); ++i) {
    EXPECT_EQ(loaded.dag.stages[i].app, pat.dag.stages[i].app);
    EXPECT_EQ(loaded.dag.stages[i].count, pat.dag.stages[i].count);
    EXPECT_EQ(loaded.dag.stages[i].deps.size(),
              pat.dag.stages[i].deps.size());
  }
}

TEST(PatternYaml, MalformedInputsThrowDiagnostics) {
  // Root must be a map.
  EXPECT_THROW(pattern_from_yaml("- 1\n- 2\n"), util::SimError);
  // Unknown op kind.
  EXPECT_THROW(pattern_from_yaml("name: x\n"
                                 "groups:\n"
                                 "  - comm: world\n"
                                 "    phases:\n"
                                 "      - app: a\n"
                                 "        ops:\n"
                                 "          - op: frobnicate\n"),
               util::SimError);
  // Group without a communicator.
  EXPECT_THROW(pattern_from_yaml("name: x\ngroups:\n  - rng_seed: 1\n"),
               util::SimError);
  // Non-integer where an integer is required.
  EXPECT_THROW(pattern_from_yaml("name: x\n"
                                 "comms:\n"
                                 "  - name: world\n"
                                 "    procs: many\n"),
               util::SimError);
  // Broken expression inside an op field.
  EXPECT_THROW(pattern_from_yaml("name: x\n"
                                 "groups:\n"
                                 "  - comm: world\n"
                                 "    phases:\n"
                                 "      - app: a\n"
                                 "        ops:\n"
                                 "          - op: pread\n"
                                 "            handle: f\n"
                                 "            size: \"1 +\"\n"),
               util::SimError);
  try {
    pattern_from_yaml("name: x\ngroups:\n  - rng_seed: 1\n");
    FAIL() << "expected SimError";
  } catch (const util::SimError& e) {
    EXPECT_NE(std::string(e.what()).find("comm"), std::string::npos);
  }
}

TEST(PatternEnums, RoundTripAndRejectUnknown) {
  for (auto k : {OpKind::kGroup, OpKind::kOpen, OpKind::kReadScattered,
                 OpKind::kPacedRead, OpKind::kSpawn}) {
    EXPECT_EQ(op_kind_from(to_string(k)), k);
  }
  for (auto l : {Layer::kPosix, Layer::kStdio, Layer::kHdf5,
                 Layer::kCompressed}) {
    EXPECT_EQ(layer_from(to_string(l)), l);
  }
  EXPECT_THROW(op_kind_from("nope"), util::SimError);
  EXPECT_THROW(layer_from("nope"), util::SimError);
  EXPECT_THROW(open_mode_from("nope"), util::SimError);
}

}  // namespace
}  // namespace wasp::pattern
