// Characterizer tests: entity attributes derive correctly from profile +
// cluster spec + declarations, and the YAML document is well formed.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "core/characterizer.hpp"
#include "io/posix.hpp"
#include "sim_test_util.hpp"

namespace wasp::charz {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

struct CharzFixture : ::testing::Test {
  CharzFixture() : sim(cluster::tiny(2)) {}

  WorkloadCharacterization characterize(WorkloadDecl decl = {}) {
    analysis::Analyzer analyzer;
    auto profile = analyzer.analyze(sim.tracer());
    Characterizer c;
    return c.characterize(decl, sim.spec(), profile);
  }

  Simulation sim;
};

Task<void> simple_prog(Simulation& s, std::uint16_t a) {
  Proc p(s, a, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open("/p/gpfs1/data", io::OpenMode::kWrite);
  co_await posix.write(f, util::kMiB, 8);
  co_await posix.close(f);
  auto g = co_await posix.open("/p/gpfs1/data", io::OpenMode::kRead);
  co_await posix.read(g, util::kMiB, 8);
  co_await posix.close(g);
}

TEST_F(CharzFixture, JobEntityReflectsClusterSpec) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  auto c = characterize();
  EXPECT_EQ(c.job.nodes, sim.spec().nodes);
  EXPECT_EQ(c.job.cpu_cores_per_node, sim.spec().node.cpu_cores);
  EXPECT_EQ(c.job.gpus_per_node, sim.spec().node.gpus);
  EXPECT_EQ(c.job.pfs_dir, "/p/gpfs1");
  EXPECT_NE(c.job.node_local_bb_dirs.find("/dev/shm"), std::string::npos);
}

TEST_F(CharzFixture, WorkflowEntityAggregatesProfile) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  auto c = characterize();
  EXPECT_EQ(c.workflow.num_apps, 1);
  EXPECT_EQ(c.workflow.io_amount, 16 * util::kMiB);
  EXPECT_FALSE(c.workflow.has_app_data_dependency);
  EXPECT_GT(c.workflow.runtime_sec, 0.0);
}

TEST_F(CharzFixture, ApplicationEntityPerApp) {
  const auto app = sim.tracer().register_app("myapp");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  auto c = characterize();
  ASSERT_EQ(c.applications.size(), 1u);
  EXPECT_EQ(c.applications[0].name, "myapp");
  EXPECT_EQ(c.applications[0].num_processes, 1);
  EXPECT_EQ(c.applications[0].interface, "POSIX");
}

TEST_F(CharzFixture, GranularitiesFromSizeFrequencies) {
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/g", io::OpenMode::kWrite);
    co_await posix.write(f, util::kMiB, 100);     // dominant
    co_await posix.write(f, 4 * util::kKiB, 30);  // >=10% -> meta granularity
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  auto c = characterize();
  EXPECT_EQ(c.high_level_io.data_granularity, util::kMiB);
  EXPECT_EQ(c.high_level_io.meta_granularity, 4 * util::kKiB);
  EXPECT_EQ(c.high_level_io.access_pattern, "Seq");
}

TEST_F(CharzFixture, MiddlewareExtraCoresFromDeclaredUsage) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  WorkloadDecl decl;
  decl.cpu_cores_used_per_node = 1;  // tiny cluster has 4 cores
  auto c = characterize(decl);
  EXPECT_EQ(c.middleware.extra_io_cores_per_node, 3);
}

TEST_F(CharzFixture, StorageEntitiesFromSpec) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  auto c = characterize();
  ASSERT_FALSE(c.node_local.empty());
  EXPECT_EQ(c.node_local[0].dir, "/dev/shm");
  EXPECT_EQ(c.shared_storage.dir, "/p/gpfs1");
  EXPECT_EQ(c.shared_storage.parallel_servers, sim.spec().pfs.num_servers);
}

TEST_F(CharzFixture, DatasetAndFileEntities) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  WorkloadDecl decl;
  decl.dataset_format = "HDF5";
  decl.format_attributes = "#dims: 3";
  auto c = characterize(decl);
  EXPECT_EQ(c.dataset.format, "HDF5");
  EXPECT_EQ(c.dataset.num_files, 1u);
  EXPECT_EQ(c.dataset.size, 8 * util::kMiB);
  EXPECT_EQ(c.file.path, "/p/gpfs1/data");
  EXPECT_EQ(c.file.size, 8 * util::kMiB);
  EXPECT_EQ(c.file.io_amount, 16 * util::kMiB);
  EXPECT_EQ(c.file.format_attributes, "#dims: 3");
}

TEST_F(CharzFixture, YamlContainsAllEntityGroups) {
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(simple_prog(sim, app));
  sim.engine().run();

  WorkloadDecl decl;
  decl.name = "TestWL";
  auto yaml = characterize(decl).to_yaml();
  for (const char* key :
       {"workload: TestWL", "job:", "job_configuration:", "workflow:",
        "applications:", "io_phases:", "software:", "high_level_io:",
        "middleware:", "node_local_storage:", "shared_storage:", "data:",
        "dataset:", "file:"}) {
    EXPECT_NE(yaml.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(CharzFixture, PhaseEntitiesOnePerApp) {
  const auto a1 = sim.tracer().register_app("a1");
  const auto a2 = sim.tracer().register_app("a2");
  sim.engine().spawn(simple_prog(sim, a1));
  sim.engine().spawn(simple_prog(sim, a2));
  sim.engine().run();
  auto c = characterize();
  EXPECT_EQ(c.phases.size(), 2u);
}

TEST(Entities, AttributeListsHaveStableShape) {
  // Attribute names drive the bench tables — shape changes should be
  // deliberate.
  EXPECT_EQ(JobConfigEntity{}.attributes().size(), 7u);
  EXPECT_EQ(WorkflowEntity{}.attributes().size(), 8u);
  EXPECT_EQ(ApplicationEntity{}.attributes().size(), 8u);
  EXPECT_EQ(IoPhaseEntity{}.attributes().size(), 6u);
  EXPECT_EQ(HighLevelIoEntity{}.attributes().size(), 5u);
  EXPECT_EQ(MiddlewareEntity{}.attributes().size(), 5u);
  EXPECT_EQ(NodeLocalStorageEntity{}.attributes().size(), 4u);
  EXPECT_EQ(SharedStorageEntity{}.attributes().size(), 4u);
  EXPECT_EQ(DatasetEntity{}.attributes().size(), 7u);
  EXPECT_EQ(FileEntity{}.attributes().size(), 7u);
}

}  // namespace
}  // namespace wasp::charz
