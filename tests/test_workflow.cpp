// DAG and Pegasus-style scheduler tests.
#include <gtest/gtest.h>

#include <set>

#include "cluster/spec.hpp"
#include "workflow/dag.hpp"

namespace wasp::workflow {
namespace {

using runtime::Proc;
using runtime::Simulation;

TaskSpec noop_task(const std::string& app, std::vector<int>* order, int id,
                   sim::Time dur = 10 * sim::kMs, int preferred = -1) {
  TaskSpec spec;
  spec.app = app;
  spec.preferred_node = preferred;
  spec.body = [order, id, dur](Proc& p) -> sim::Task<void> {
    co_await p.compute(dur);
    if (order != nullptr) order->push_back(id);
  };
  return spec;
}

TEST(Dag, AcyclicDetection) {
  Dag dag;
  const int a = dag.add_task(noop_task("a", nullptr, 0));
  const int b = dag.add_task(noop_task("b", nullptr, 1));
  const int c = dag.add_task(noop_task("c", nullptr, 2));
  dag.add_dependency(b, a);
  dag.add_dependency(c, b);
  EXPECT_TRUE(dag.acyclic());
  dag.add_dependency(a, c);  // close the cycle
  EXPECT_FALSE(dag.acyclic());
}

TEST(Dag, RejectsSelfDependency) {
  Dag dag;
  const int a = dag.add_task(noop_task("a", nullptr, 0));
  EXPECT_THROW(dag.add_dependency(a, a), util::SimError);
}

TEST(PegasusScheduler, RunsTasksInDependencyOrder) {
  Simulation sim(cluster::tiny(2));
  std::vector<int> order;
  Dag dag;
  const int a = dag.add_task(noop_task("stage1", &order, 0));
  const int b = dag.add_task(noop_task("stage1", &order, 1));
  const int c = dag.add_task(noop_task("stage2", &order, 2));
  dag.add_dependency(c, a);
  dag.add_dependency(c, b);

  PegasusScheduler::Options opts;
  opts.slots = 4;
  opts.nodes = 2;
  PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 2);  // c strictly after a and b
  EXPECT_EQ(sched.tasks_executed(), 3u);
}

TEST(PegasusScheduler, SlotPoolBoundsConcurrency) {
  Simulation sim(cluster::tiny(2));
  Dag dag;
  for (int i = 0; i < 10; ++i) {
    dag.add_task(noop_task("t", nullptr, i, 100 * sim::kMs));
  }
  PegasusScheduler::Options opts;
  opts.slots = 2;  // 10 tasks, two at a time -> 5 waves of 100ms
  opts.nodes = 2;
  PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();
  EXPECT_EQ(sim.engine().now(), 500 * sim::kMs);
}

TEST(PegasusScheduler, WideFanoutCompletes) {
  Simulation sim(cluster::tiny(4));
  Dag dag;
  const int root = dag.add_task(noop_task("root", nullptr, -1));
  const int join = dag.add_task(noop_task("join", nullptr, -2));
  for (int i = 0; i < 200; ++i) {
    const int t = dag.add_task(noop_task("fan", nullptr, i));
    dag.add_dependency(t, root);
    dag.add_dependency(join, t);
  }
  PegasusScheduler::Options opts;
  opts.slots = 16;
  opts.nodes = 4;
  PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();
  EXPECT_EQ(sched.tasks_executed(), 202u);
  EXPECT_TRUE(sim.engine().all_roots_done());
}

TEST(PegasusScheduler, LocalityAwarePlacementHonorsPreferredNode) {
  Simulation sim(cluster::tiny(4));
  std::vector<int> nodes_used;
  Dag dag;
  for (int i = 0; i < 8; ++i) {
    TaskSpec spec;
    spec.app = "t";
    spec.preferred_node = 2;
    spec.body = [&nodes_used](Proc& p) -> sim::Task<void> {
      co_await p.compute(1 * sim::kMs);
      nodes_used.push_back(p.node());
    };
    dag.add_task(std::move(spec));
  }
  PegasusScheduler::Options opts;
  opts.slots = 4;
  opts.nodes = 4;
  opts.locality_aware = true;
  PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();
  for (int n : nodes_used) EXPECT_EQ(n, 2);
}

TEST(PegasusScheduler, RoundRobinWithoutLocality) {
  Simulation sim(cluster::tiny(4));
  std::set<int> nodes_used;
  Dag dag;
  for (int i = 0; i < 8; ++i) {
    TaskSpec spec;
    spec.app = "t";
    spec.body = [&nodes_used](Proc& p) -> sim::Task<void> {
      co_await p.compute(1 * sim::kMs);
      nodes_used.insert(p.node());
    };
    dag.add_task(std::move(spec));
  }
  PegasusScheduler::Options opts;
  opts.slots = 8;
  opts.nodes = 4;
  PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();
  EXPECT_EQ(nodes_used.size(), 4u);
}

TEST(PegasusScheduler, CyclicDagIsRejected) {
  Simulation sim(cluster::tiny(2));
  Dag dag;
  const int a = dag.add_task(noop_task("a", nullptr, 0));
  const int b = dag.add_task(noop_task("b", nullptr, 1));
  dag.add_dependency(a, b);
  dag.add_dependency(b, a);
  PegasusScheduler sched(sim, {});
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  EXPECT_THROW(sim.engine().run(), util::SimError);
}

}  // namespace
}  // namespace wasp::workflow
