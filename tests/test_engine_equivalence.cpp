// The queue seam's contract at full-workload scale: running any paper
// workload on the timer-wheel engine produces a trace byte-identical to the
// heap-oracle engine — same records, same event counts, same profiles.
// Unit-level ordering is pinned by the EngineQueue property tests; this file
// pins it end-to-end through runtime::Simulation, the I/O stack, tracing,
// and analysis.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "workloads/ior.hpp"
#include "workloads/registry.hpp"

namespace wasp::workloads {
namespace {

cluster::ClusterSpec test_cluster(int nodes = 4) {
  auto spec = cluster::lassen(nodes);
  spec.node.cpu_cores = 8;
  return spec;
}

struct TracedRun {
  RunOutput out;
  std::vector<trace::Record> records;
  std::vector<std::string> apps;
};

TracedRun traced_run(const Workload& w, sim::Engine::QueueKind kind) {
  sim::Engine::Options opts;
  opts.queue = kind;
  runtime::Simulation sim(test_cluster(), opts);
  TracedRun r;
  r.out = run_with(sim, w, advisor::RunConfig{},
                   analysis::Analyzer::Options{});
  r.records = sim.tracer().records();
  for (std::size_t a = 0; a < sim.tracer().num_apps(); ++a) {
    r.apps.push_back(sim.tracer().app_name(static_cast<std::uint16_t>(a)));
  }
  return r;
}

void expect_queue_invariant(const Workload& w) {
  const TracedRun wheel = traced_run(w, sim::Engine::QueueKind::kWheel);
  const TracedRun heap = traced_run(w, sim::Engine::QueueKind::kHeap);
  EXPECT_EQ(wheel.apps, heap.apps);
  ASSERT_EQ(wheel.records.size(), heap.records.size());
  for (std::size_t i = 0; i < heap.records.size(); ++i) {
    if (!(wheel.records[i] == heap.records[i])) {
      const auto& a = wheel.records[i];
      const auto& b = heap.records[i];
      FAIL() << "record " << i << " diverges: wheel(app=" << a.app
             << " rank=" << a.rank << " op=" << static_cast<int>(a.op)
             << " off=" << a.offset << " size=" << a.size
             << " count=" << a.count << " t=" << a.tstart << ".." << a.tend
             << ") vs heap(app=" << b.app << " rank=" << b.rank
             << " op=" << static_cast<int>(b.op) << " off=" << b.offset
             << " size=" << b.size << " count=" << b.count << " t="
             << b.tstart << ".." << b.tend << ")";
    }
  }
  EXPECT_EQ(wheel.out.job_seconds, heap.out.job_seconds);
  EXPECT_EQ(wheel.out.engine_events, heap.out.engine_events);
  EXPECT_EQ(wheel.out.characterization.to_yaml(),
            heap.out.characterization.to_yaml());
}

TEST(EngineEquivalence, AllSixWorkloadsTraceByteIdenticalAcrossQueues) {
  for (const auto& entry : paper_workloads()) {
    SCOPED_TRACE(entry.id);
    expect_queue_invariant(entry.make_test());
  }
}

TEST(EngineEquivalence, IorTraceByteIdenticalAcrossQueues) {
  expect_queue_invariant(make_ior(IorParams::test()));
  auto P = IorParams::test();
  P.file_per_process = false;
  P.read_back = true;
  expect_queue_invariant(make_ior(P));
}

}  // namespace
}  // namespace wasp::workloads
