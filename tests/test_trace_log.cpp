// Trace persistence: Recorder-style binary logs round-trip, CSV export, and
// malformed inputs fail loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/posix.hpp"
#include "sim_test_util.hpp"
#include "trace/log_io.hpp"
#include "util/error.hpp"

namespace wasp::trace {
namespace {

using runtime::Proc;
using runtime::Simulation;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Produce a small but non-trivial trace.
void populate(Simulation& sim) {
  const auto app = sim.tracer().register_app("writer");
  auto prog = [](Simulation& s, std::uint16_t a) -> sim::Task<void> {
    Proc p(s, a, 3, 1);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/log_t", io::OpenMode::kWrite);
    co_await posix.write(f, 4096, 16);
    co_await posix.close(f);
    auto g = co_await posix.open("/dev/shm/local_t", io::OpenMode::kWrite);
    co_await posix.write(g, 512, 2);
    co_await posix.close(g);
    co_await p.compute(5 * sim::kMs);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST(TraceLog, BinaryRoundTripPreservesEverything) {
  Simulation sim(cluster::tiny(2));
  populate(sim);
  const std::string path = temp_path("roundtrip.wtrc");
  write_log(path, sim.tracer());
  const LogData data = read_log(path);

  const auto& original = sim.tracer().records();
  ASSERT_EQ(data.records.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Record& a = original[i];
    const Record& b = data.records[i];
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.iface, b.iface);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.file, b.file);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.tstart, b.tstart);
    EXPECT_EQ(a.tend, b.tend);
    EXPECT_EQ(data.paths[i], sim.tracer().path_of(a.file, a.node));
  }
  EXPECT_EQ(data.apps.size(), sim.tracer().num_apps());
  std::remove(path.c_str());
}

TEST(TraceLog, SnapshotMatchesWriteRead) {
  Simulation sim(cluster::tiny(2));
  populate(sim);
  const LogData snap = snapshot(sim.tracer());
  EXPECT_EQ(snap.records.size(), sim.tracer().records().size());
  EXPECT_EQ(snap.fs_names.size(), sim.tracer().num_filesystems());
  // Node-local path resolves through the record's node.
  bool found_local = false;
  for (const auto& p : snap.paths) {
    if (p == "/dev/shm/local_t") found_local = true;
  }
  EXPECT_TRUE(found_local);
}

TEST(TraceLog, CsvHasHeaderAndOneLinePerRecord) {
  Simulation sim(cluster::tiny(2));
  populate(sim);
  std::ostringstream os;
  write_csv(os, sim.tracer());
  const std::string out = os.str();
  EXPECT_EQ(out.find("app,rank,node,iface,op,path"), 0u);
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, sim.tracer().records().size() + 1);
  EXPECT_NE(out.find("/p/gpfs1/log_t"), std::string::npos);
}

TEST(TraceLog, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.wtrc");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a trace log at all";
  }
  EXPECT_THROW(read_log(path), util::SimError);
  std::remove(path.c_str());
}

TEST(TraceLog, RejectsTruncatedFile) {
  Simulation sim(cluster::tiny(2));
  populate(sim);
  const std::string path = temp_path("trunc.wtrc");
  write_log(path, sim.tracer());
  // Truncate to half.
  std::ifstream is(path, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  std::string content = buf.str();
  is.close();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(content.data(),
             static_cast<std::streamsize>(content.size() / 2));
  }
  EXPECT_THROW(read_log(path), util::SimError);
  std::remove(path.c_str());
}

TEST(TraceLog, MissingFileThrows) {
  EXPECT_THROW(read_log("/nonexistent/dir/x.wtrc"), util::SimError);
}

TEST(TraceLog, RejectsOverstatedRecordCount) {
  // A structurally valid header whose declared record count exceeds what
  // the file can possibly hold must fail at header validation — before any
  // reserve() of the bogus count.
  const std::string path = temp_path("overstated.wtrc");
  {
    std::ofstream os(path, std::ios::binary);
    os.write("WASPTRC2", 8);
    const std::uint64_t zero = 0;
    os.write(reinterpret_cast<const char*>(&zero), 8);  // napps
    os.write(reinterpret_cast<const char*>(&zero), 8);  // nfs
    os.write(reinterpret_cast<const char*>(&zero), 8);  // npaths
    const std::uint64_t huge = 1000000000000000ull;
    os.write(reinterpret_cast<const char*>(&huge), 8);  // nrecords
  }
  EXPECT_THROW(read_log(path), util::SimError);
  EXPECT_THROW(LogReader{path}, util::SimError);
  std::remove(path.c_str());
}

TEST(TraceLog, RejectsRowSectionShorterThanDeclared) {
  // Chop exactly one row off a valid log: the header still parses, but the
  // count-vs-size check must reject it at open time.
  Simulation sim(cluster::tiny(2));
  populate(sim);
  const std::string path = temp_path("shortrows.wtrc");
  write_log(path, sim.tracer());
  std::ifstream is(path, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  std::string content = buf.str();
  is.close();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(content.data(), static_cast<std::streamsize>(content.size() - 4));
  }
  EXPECT_THROW(LogReader{path}, util::SimError);
  std::remove(path.c_str());
}

TEST(TraceLog, LogReaderStreamsSameRowsAsReadLog) {
  Simulation sim(cluster::tiny(2));
  populate(sim);
  const std::string path = temp_path("stream.wtrc");
  write_log(path, sim.tracer());
  const LogData data = read_log(path);

  LogReader reader(path);
  EXPECT_EQ(reader.header().num_records, data.records.size());
  EXPECT_EQ(reader.remaining(), data.records.size());
  std::vector<Record> records;
  std::vector<std::uint32_t> path_idx;
  std::vector<std::uint64_t> file_sizes;
  while (reader.next_chunk(7, records, path_idx, file_sizes) > 0) {
  }
  EXPECT_EQ(reader.remaining(), 0u);
  ASSERT_EQ(records.size(), data.records.size());
  ASSERT_EQ(path_idx.size(), records.size());
  ASSERT_EQ(file_sizes.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(records[i] == data.records[i]) << "record " << i;
    EXPECT_EQ(reader.header().path_table[path_idx[i]], data.paths[i]);
    EXPECT_EQ(file_sizes[i], data.file_sizes[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wasp::trace
