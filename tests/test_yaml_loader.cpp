// YAML reader + characterization loader: parser subset, reverse value
// parsers, and the full emit -> parse round trip that the wasp_advise tool
// relies on.
#include <gtest/gtest.h>

#include "advisor/rules.hpp"
#include "analysis/analyzer.hpp"
#include "core/characterizer.hpp"
#include "core/yaml_loader.hpp"
#include "io/posix.hpp"
#include "sim_test_util.hpp"
#include "util/parse.hpp"
#include "util/yaml_reader.hpp"

namespace wasp {
namespace {

TEST(Parse, BytesRoundTrip) {
  for (util::Bytes v : {std::uint64_t{0}, std::uint64_t{632},
                        std::uint64_t{4096}, 16 * util::kMB, 750 * util::kGB,
                        1500 * util::kGB}) {
    auto parsed = util::parse_bytes(util::format_bytes(v));
    ASSERT_TRUE(parsed.has_value()) << v;
    // Formatting keeps 3 significant digits; allow 1% slack.
    EXPECT_NEAR(static_cast<double>(*parsed), static_cast<double>(v),
                static_cast<double>(v) * 0.011 + 1);
  }
  EXPECT_FALSE(util::parse_bytes("garbage").has_value());
  EXPECT_FALSE(util::parse_bytes("12XB").has_value());
}

TEST(Parse, SecondsRoundTrip) {
  for (double v : {0.0003, 0.45, 33.0, 664.0, 3567.0}) {
    auto parsed = util::parse_seconds(util::format_seconds(v));
    ASSERT_TRUE(parsed.has_value()) << v;
    EXPECT_NEAR(*parsed, v, v * 0.011 + 1e-9);
  }
  EXPECT_EQ(util::parse_seconds("2hr").value(), 7200.0);
  EXPECT_FALSE(util::parse_seconds("fast").has_value());
}

TEST(Parse, PercentAndOpsDist) {
  EXPECT_DOUBLE_EQ(util::parse_percent("75%").value(), 0.75);
  EXPECT_DOUBLE_EQ(util::parse_percent("1.5%").value(), 0.015);
  EXPECT_DOUBLE_EQ(util::parse_ops_dist("30% data, 70% meta").value(), 0.30);
  EXPECT_FALSE(util::parse_ops_dist("30%").has_value());
}

TEST(Parse, RateAndFppShared) {
  EXPECT_DOUBLE_EQ(util::parse_rate("64GB/s").value(), 64e9);
  auto fs = util::parse_fpp_shared("737/37");
  ASSERT_TRUE(fs.has_value());
  EXPECT_EQ(fs->first, 737u);
  EXPECT_EQ(fs->second, 37u);
  EXPECT_FALSE(util::parse_fpp_shared("737").has_value());
}

TEST(YamlReader, ParsesNestedMapsAndSeqs) {
  const std::string doc =
      "workload: CM1\n"
      "job:\n"
      "  nodes: 32\n"
      "  apps:\n"
      "    - name: cm1\n"
      "      procs: 1280\n"
      "    - name: viewer\n"
      "      procs: 32\n"
      "data:\n"
      "  format: bin\n";
  const auto root = util::yaml::parse(doc);
  EXPECT_EQ(root.get("workload"), "CM1");
  const auto* job = root.find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->get("nodes"), "32");
  const auto* apps = job->find("apps");
  ASSERT_NE(apps, nullptr);
  ASSERT_TRUE(apps->is_seq());
  ASSERT_EQ(apps->items().size(), 2u);
  EXPECT_EQ(apps->items()[0].get("name"), "cm1");
  EXPECT_EQ(apps->items()[1].get("procs"), "32");
  EXPECT_EQ(root.find("data")->get("format"), "bin");
}

TEST(YamlReader, HandlesQuotedScalarsWithColons) {
  const std::string doc = "path: \"/p/gpfs1: data\"\n";
  const auto root = util::yaml::parse(doc);
  EXPECT_EQ(root.get("path"), "/p/gpfs1: data");
}

TEST(YamlReader, SkipsCommentsAndBlankLines) {
  const std::string doc =
      "# header comment\n"
      "\n"
      "a: 1\n"
      "\n"
      "b: 2\n";
  const auto root = util::yaml::parse(doc);
  EXPECT_EQ(root.get("a"), "1");
  EXPECT_EQ(root.get("b"), "2");
}

TEST(YamlReader, MissingKeysAreNull) {
  const auto root = util::yaml::parse("a: 1\n");
  EXPECT_EQ(root.find("nope"), nullptr);
  EXPECT_EQ(root.get("nope", "dflt"), "dflt");
}

// ---------------------------------------------------------------------------
// Full round trip: characterize a run, emit YAML, load it back, and check
// that everything the rule engine consumes survived.
// ---------------------------------------------------------------------------
TEST(YamlLoader, CharacterizationRoundTrip) {
  runtime::Simulation sim(cluster::tiny(2));
  const auto app = sim.tracer().register_app("producer");
  auto prog = [](runtime::Simulation& s, std::uint16_t a) -> sim::Task<void> {
    runtime::Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/x", io::OpenMode::kWrite);
    co_await posix.write(f, util::kMiB, 16);
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();

  analysis::Analyzer analyzer;
  charz::Characterizer characterizer;
  charz::WorkloadDecl decl;
  decl.name = "roundtrip";
  decl.dataset_format = "HDF5";
  const auto original =
      characterizer.characterize(decl, sim.spec(), analyzer.analyze(sim.tracer()));

  const auto loaded = charz::from_yaml(original.to_yaml());

  EXPECT_EQ(loaded.workload, original.workload);
  EXPECT_EQ(loaded.job.nodes, original.job.nodes);
  EXPECT_EQ(loaded.job.pfs_dir, original.job.pfs_dir);
  EXPECT_EQ(loaded.job.shared_bb_dir, original.job.shared_bb_dir);
  EXPECT_EQ(loaded.workflow.num_apps, original.workflow.num_apps);
  EXPECT_NEAR(static_cast<double>(loaded.workflow.io_amount),
              static_cast<double>(original.workflow.io_amount),
              static_cast<double>(original.workflow.io_amount) * 0.011);
  ASSERT_EQ(loaded.applications.size(), original.applications.size());
  EXPECT_EQ(loaded.applications[0].name, original.applications[0].name);
  EXPECT_EQ(loaded.applications[0].interface,
            original.applications[0].interface);
  EXPECT_EQ(loaded.high_level_io.access_pattern,
            original.high_level_io.access_pattern);
  EXPECT_NEAR(static_cast<double>(loaded.high_level_io.data_granularity),
              static_cast<double>(original.high_level_io.data_granularity),
              static_cast<double>(original.high_level_io.data_granularity) *
                  0.011);
  ASSERT_EQ(loaded.node_local.size(), original.node_local.size());
  EXPECT_EQ(loaded.node_local[0].dir, original.node_local[0].dir);
  EXPECT_EQ(loaded.shared_storage.parallel_servers,
            original.shared_storage.parallel_servers);
  EXPECT_EQ(loaded.dataset.format, "HDF5");
  EXPECT_EQ(loaded.file.path, original.file.path);
}

TEST(YamlLoader, AdvisorDecisionsSurviveTheFile) {
  // Build a CosmoFlow-like characterization, serialize, reload, and check
  // the rule engine reaches the same decisions from the file alone.
  charz::WorkloadCharacterization c;
  c.workload = "cosmo";
  c.job.nodes = 32;
  c.job.node_local_bb_dirs = "/dev/shm";
  c.workflow.shared_files = 49664;
  c.workflow.fpp_files = 0;
  c.workflow.num_apps = 1;
  charz::ApplicationEntity app;
  app.name = "cosmoflow";
  app.interface = "HDF5";
  c.applications.push_back(app);
  c.high_level_io.data_granularity = util::kMiB;
  c.high_level_io.meta_granularity = 4 * util::kKiB;
  c.high_level_io.access_pattern = "Seq";
  c.middleware.memory_per_node = 196 * util::kGiB;
  charz::NodeLocalStorageEntity shm;
  shm.dir = "/dev/shm";
  shm.capacity_per_node = 128 * util::kGiB;
  c.node_local.push_back(shm);
  c.dataset.format = "HDF5";
  c.dataset.size = 1500ull * util::kGB;
  c.dataset.io_amount = 1500ull * util::kGB;
  c.dataset.data_ops_fraction = 0.02;

  advisor::RuleEngine rules;
  const auto direct = rules.evaluate(c);
  const auto via_file = rules.evaluate(charz::from_yaml(c.to_yaml()));

  ASSERT_EQ(direct.size(), via_file.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].id, via_file[i].id);
  }
  const auto cfg = advisor::RuleEngine::configure(via_file);
  EXPECT_TRUE(cfg.preload_input_to_node_local);
  EXPECT_TRUE(cfg.hdf5_chunking);
}

TEST(YamlLoader, RejectsNonCharacterizationDocuments) {
  EXPECT_THROW(charz::from_yaml("just: a map\n"), util::SimError);
  EXPECT_THROW(charz::load_yaml_file("/nonexistent.yaml"), util::SimError);
}

}  // namespace
}  // namespace wasp
