// Hierarchical buffering middleware: staging, hits/misses, write-back
// flushes, capacity pressure and eviction policies.
#include <gtest/gtest.h>

#include "io/tiered_buffer.hpp"
#include "sim_test_util.hpp"

namespace wasp::io {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

struct TbFixture : ::testing::Test {
  TbFixture() : sim(cluster::tiny(2)) {}
  Simulation sim;
};

// Coroutine helpers take `path` by value: they outlive the spawn call.
Task<void> produce(Simulation& s, std::uint16_t a, TieredBuffer& tb,
                   std::string path, fs::Bytes bytes) {
  Proc p(s, a, 0, 0);
  auto f = co_await tb.open(p, path, OpenMode::kWrite);
  co_await tb.write(p, f, bytes, 1);
  co_await tb.close(p, f);
}

Task<void> consume(Simulation& s, std::uint16_t a, TieredBuffer& tb,
                   std::string path, fs::Bytes bytes) {
  Proc p(s, a, 0, 0);
  auto f = co_await tb.open(p, path, OpenMode::kRead);
  co_await tb.read(p, f, bytes, 1);
  co_await tb.close(p, f);
}

TEST_F(TbFixture, WriteBackStagesOnTierAndPfsStaysClean) {
  TieredBufferConfig cfg;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(produce(sim, app, tb, "/p/gpfs1/w/a", util::kMiB));
  sim.engine().run();
  EXPECT_TRUE(tb.is_staged(0, "/p/gpfs1/w/a"));
  EXPECT_EQ(tb.staged_bytes(0), util::kMiB);
  // Nothing on the PFS yet (write-back, not flushed).
  EXPECT_FALSE(sim.pfs().ns({0, 0}).exists("/p/gpfs1/w/a"));
}

TEST_F(TbFixture, ReadAfterWriteIsATierHit) {
  TieredBufferConfig cfg;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a,
                 TieredBuffer& buf) -> Task<void> {
    co_await produce(s, a, buf, "/p/gpfs1/w/b", util::kMiB);
    co_await consume(s, a, buf, "/p/gpfs1/w/b", util::kMiB);
  };
  sim.engine().spawn(prog(sim, app, tb));
  sim.engine().run();
  EXPECT_EQ(tb.hits(), 1u);
  EXPECT_EQ(tb.misses(), 0u);
  // The PFS never served a data byte.
  EXPECT_EQ(sim.pfs().counters().bytes_read, 0u);
}

TEST_F(TbFixture, ColdReadIsAMiss) {
  // Pre-create the file directly on the PFS.
  const auto app = sim.tracer().register_app("t");
  auto seed = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/cold", OpenMode::kWrite);
    co_await posix.write(f, util::kMiB, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(seed(sim, app));
  sim.engine().run();

  TieredBufferConfig cfg;
  TieredBuffer tb(sim, cfg);
  sim.engine().spawn(consume(sim, app, tb, "/p/gpfs1/cold", util::kMiB));
  sim.engine().run();
  EXPECT_EQ(tb.misses(), 1u);
  EXPECT_EQ(tb.hits(), 0u);
}

TEST_F(TbFixture, FlushAllPersistsDirtyFiles) {
  TieredBufferConfig cfg;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a,
                 TieredBuffer& buf) -> Task<void> {
    co_await produce(s, a, buf, "/p/gpfs1/w/c", 2 * util::kMiB);
    Proc p(s, a, 0, 0);
    co_await buf.flush_all(p);
  };
  sim.engine().spawn(prog(sim, app, tb));
  sim.engine().run();
  auto& ns = sim.pfs().ns({0, 0});
  auto id = ns.lookup("/p/gpfs1/w/c");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(ns.inode(*id).size, 2 * util::kMiB);
}

TEST_F(TbFixture, CapacityPressureEvictsAndFlushesDirtyVictims) {
  TieredBufferConfig cfg;
  cfg.capacity_per_node = 4 * util::kMiB;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a,
                 TieredBuffer& buf) -> Task<void> {
    for (int i = 0; i < 6; ++i) {
      co_await produce(s, a, buf, "/p/gpfs1/ev/" + std::to_string(i),
                       util::kMiB);
    }
  };
  sim.engine().spawn(prog(sim, app, tb));
  sim.engine().run();
  EXPECT_GE(tb.evictions(), 2u);
  EXPECT_LE(tb.staged_bytes(0), cfg.capacity_per_node);
  // Evicted dirty files were flushed to the PFS, not lost.
  EXPECT_TRUE(sim.pfs().ns({0, 0}).exists("/p/gpfs1/ev/0"));
}

TEST_F(TbFixture, LruKeepsHotEntryFifoDoesNot) {
  auto run_policy = [this](TieredBufferConfig::Eviction policy) {
    TieredBufferConfig cfg;
    cfg.capacity_per_node = 3 * util::kMiB;
    cfg.eviction = policy;
    TieredBuffer tb(sim, cfg);
    const auto app = sim.tracer().register_app("t");
    auto prog = [](Simulation& s, std::uint16_t a,
                   TieredBuffer& buf) -> Task<void> {
      co_await produce(s, a, buf, "/p/gpfs1/p/hot", util::kMiB);
      co_await produce(s, a, buf, "/p/gpfs1/p/b", util::kMiB);
      co_await produce(s, a, buf, "/p/gpfs1/p/c", util::kMiB);
      // Touch "hot" so LRU ranks it newest while FIFO still ranks it
      // oldest.
      co_await consume(s, a, buf, "/p/gpfs1/p/hot", util::kMiB);
      // One more file forces a single eviction.
      co_await produce(s, a, buf, "/p/gpfs1/p/d", util::kMiB);
    };
    sim.engine().spawn(prog(sim, app, tb));
    sim.engine().run();
    return tb.is_staged(0, "/p/gpfs1/p/hot");
  };
  EXPECT_TRUE(run_policy(TieredBufferConfig::Eviction::kLru));
  EXPECT_FALSE(run_policy(TieredBufferConfig::Eviction::kFifo));
}

TEST_F(TbFixture, OversizedFileFallsBackToPfs) {
  TieredBufferConfig cfg;
  cfg.capacity_per_node = util::kMiB;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  sim.engine().spawn(produce(sim, app, tb, "/p/gpfs1/big", 8 * util::kMiB));
  sim.engine().run();
  auto& ns = sim.pfs().ns({0, 0});
  auto id = ns.lookup("/p/gpfs1/big");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(ns.inode(*id).size, 8 * util::kMiB);
  EXPECT_LE(tb.staged_bytes(0), cfg.capacity_per_node);
}

TEST_F(TbFixture, UserLevelOpsAreTracedInternalTrafficIsNot) {
  TieredBufferConfig cfg;
  TieredBuffer tb(sim, cfg);
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a,
                 TieredBuffer& buf) -> Task<void> {
    co_await produce(s, a, buf, "/p/gpfs1/tr", util::kMiB);
    co_await consume(s, a, buf, "/p/gpfs1/tr", util::kMiB);
    Proc p(s, a, 0, 0);
    co_await buf.flush_all(p);
  };
  sim.engine().spawn(prog(sim, app, tb));
  sim.engine().run();
  EXPECT_EQ(testutil::count_ops(sim.tracer(),
                                [](const trace::Record& r) {
                                  return r.op == trace::Op::kWrite;
                                }),
            1u);
  EXPECT_EQ(testutil::count_ops(sim.tracer(),
                                [](const trace::Record& r) {
                                  return r.op == trace::Op::kRead;
                                }),
            1u);
}

}  // namespace
}  // namespace wasp::io
