// Shared burst-buffer tier and the async checkpoint-drain optimization.
#include <gtest/gtest.h>

#include "io/posix.hpp"
#include "sim_test_util.hpp"
#include "workloads/hacc.hpp"

namespace wasp::fs {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

cluster::ClusterSpec tiny_cori() {
  auto spec = cluster::cori(2);
  spec.node.cpu_cores = 4;
  return spec;
}

TEST(BurstBuffer, CoriPresetMountsDataWarp) {
  Simulation sim(tiny_cori());
  ASSERT_TRUE(sim.has_shared_bb());
  EXPECT_EQ(sim.shared_bb().mount(), "/p/bb");
  EXPECT_TRUE(sim.shared_bb().shared());
  EXPECT_EQ(&sim.mounts().resolve("/p/bb/ckpt"), &sim.shared_bb());
}

TEST(BurstBuffer, LassenHasNone) {
  Simulation sim(cluster::lassen(2));
  EXPECT_FALSE(sim.has_shared_bb());
  EXPECT_THROW(sim.shared_bb(), util::SimError);
}

TEST(BurstBuffer, SharedNamespaceAcrossNodes) {
  Simulation sim(tiny_cori());
  const auto app = sim.tracer().register_app("t");
  auto writer = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/bb/stage", io::OpenMode::kWrite);
    co_await posix.write(f, util::kMiB, 1);
    co_await posix.close(f);
  };
  auto reader = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 1, 1);  // different node sees the same file
    co_await p.compute(1 * sim::kSec);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/bb/stage", io::OpenMode::kRead);
    co_await posix.read(f, util::kMiB, 1);
    co_await posix.close(f);
  };
  sim.engine().spawn(writer(sim, app));
  sim.engine().spawn(reader(sim, app));
  sim.engine().run();
  EXPECT_EQ(sim.shared_bb().counters().bytes_read, util::kMiB);
  EXPECT_EQ(sim.shared_bb().used_bytes(), util::kMiB);
}

TEST(BurstBuffer, MetadataMuchCheaperThanPfs) {
  Simulation sim(tiny_cori());
  const auto app = sim.tracer().register_app("t");
  sim::Time bb_time = 0;
  sim::Time pfs_time = 0;
  auto prog = [](Simulation& s, std::uint16_t a, sim::Time& bb,
                 sim::Time& pfs) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    sim::Time t0 = p.now();
    for (int i = 0; i < 32; ++i) {
      auto f = co_await posix.open("/p/bb/m" + std::to_string(i),
                                   io::OpenMode::kWrite);
      co_await posix.close(f);
    }
    bb = p.now() - t0;
    t0 = p.now();
    for (int i = 0; i < 32; ++i) {
      auto f = co_await posix.open(
          s.pfs().mount() + "/m" + std::to_string(i), io::OpenMode::kWrite);
      co_await posix.close(f);
    }
    pfs = p.now() - t0;
  };
  sim.engine().spawn(prog(sim, app, bb_time, pfs_time));
  sim.engine().run();
  EXPECT_LT(bb_time * 2, pfs_time);
}

TEST(BurstBuffer, CapacityEnforced) {
  auto spec = tiny_cori();
  spec.shared_bb->capacity = util::kMiB;
  Simulation sim(spec);
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/bb/big", io::OpenMode::kWrite);
    EXPECT_THROW({ co_await posix.write(f, 2 * util::kMiB, 1); },
                 util::SimError);
  };
  sim.engine().spawn(prog(sim, app));
  sim.engine().run();
}

TEST(AsyncCheckpointDrain, FasterAndStillPersistsToPfs) {
  // The drain pays off under PFS contention (otherwise the extra copy
  // costs more than it saves): 64 ranks, checkpoints too big for the
  // client cache.
  workloads::HaccParams P;
  P.nodes = 4;
  P.ranks_per_node = 16;
  P.per_rank_bytes = util::kGiB;
  P.transfer = 16 * util::kMiB;
  P.rounds = 4;
  P.generate_compute = sim::seconds(0.2);
  auto spec = cluster::cori(4);
  spec.node.cpu_cores = 16;

  auto sync_out = workloads::run(spec, workloads::make_hacc(P));

  advisor::RunConfig cfg;
  cfg.async_checkpoint_drain = true;
  runtime::Simulation sim(spec);
  auto async_out = workloads::run_with(sim, workloads::make_hacc(P), cfg,
                                       analysis::Analyzer::Options{});

  // The fast tier absorbs checkpoint+restart: job gets faster.
  EXPECT_LT(async_out.job_seconds, sync_out.job_seconds);
  // The drain still persisted every rank's checkpoint to the PFS.
  auto& ns = sim.pfs().ns({0, 0});
  const int ranks = P.nodes * P.ranks_per_node;
  for (int r = 0; r < ranks; ++r) {
    const std::string path =
        sim.pfs().mount() + "/hacc/" + std::to_string(r) + ".ckpt";
    auto id = ns.lookup(path);
    ASSERT_TRUE(id.has_value()) << path;
    EXPECT_EQ(ns.inode(*id).size, P.per_rank_bytes / P.transfer * P.transfer);
  }
}

}  // namespace
}  // namespace wasp::fs
