// Unit tests for the discrete-event engine, Task coroutines, and the
// synchronization primitives they rest on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/link.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace wasp::sim {
namespace {

Task<void> delay_then_mark(Engine& eng, Time d, std::vector<Time>& out) {
  co_await Delay(eng, d);
  out.push_back(eng.now());
}

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, DelayAdvancesSimulatedClock) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 5 * kSec, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 5 * kSec);
  EXPECT_TRUE(eng.all_roots_done());
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 0, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 0u);
}

TEST(Engine, EventsAtSameInstantRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  auto proc = [](Engine& e, int id, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 1 * kMs);
    ord.push_back(id);
  };
  for (int i = 0; i < 8; ++i) eng.spawn(proc(eng, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, InterleavesByTimestamp) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 3 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 1 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 2 * kSec, marks));
  eng.run();
  EXPECT_EQ(marks, (std::vector<Time>{1 * kSec, 2 * kSec, 3 * kSec}));
}

Task<int> child_value(Engine& eng) {
  co_await Delay(eng, 10);
  co_return 42;
}

Task<void> parent_await(Engine& eng, int& out) {
  out = co_await child_value(eng);
}

TEST(Task, NestedAwaitPropagatesValue) {
  Engine eng;
  int value = 0;
  eng.spawn(parent_await(eng, value));
  eng.run();
  EXPECT_EQ(value, 42);
}

Task<void> thrower(Engine& eng) {
  co_await Delay(eng, 1);
  throw std::runtime_error("boom");
}

Task<void> catcher(Engine& eng, bool& caught) {
  try {
    co_await thrower(eng);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  eng.spawn(catcher(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ExceptionEscapingRootRethrownFromRun) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 1 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 10 * kSec, marks));
  EXPECT_FALSE(eng.run_until(5 * kSec));
  EXPECT_EQ(marks.size(), 1u);
  EXPECT_EQ(eng.now(), 5 * kSec);
  EXPECT_FALSE(eng.all_roots_done());
  EXPECT_TRUE(eng.run_until(20 * kSec));
  EXPECT_EQ(marks.size(), 2u);
}

TEST(Event, BroadcastWakesAllWaiters) {
  Engine eng;
  Event ev(eng);
  std::vector<Time> woke;
  auto waiter = [](Engine& e, Event& event, std::vector<Time>& w) -> Task<void> {
    co_await event.wait();
    w.push_back(e.now());
  };
  auto setter = [](Engine& e, Event& event) -> Task<void> {
    co_await Delay(e, 7 * kSec);
    event.set();
  };
  for (int i = 0; i < 3; ++i) eng.spawn(waiter(eng, ev, woke));
  eng.spawn(setter(eng, ev));
  eng.run();
  EXPECT_EQ(woke, (std::vector<Time>{7 * kSec, 7 * kSec, 7 * kSec}));
}

TEST(Event, WaitOnSetEventIsImmediate) {
  Engine eng;
  Event ev(eng);
  ev.set();
  Time woke = 123;
  auto waiter = [](Engine& e, Event& event, Time& w) -> Task<void> {
    co_await event.wait();
    w = e.now();
  };
  eng.spawn(waiter(eng, ev, woke));
  eng.run();
  EXPECT_EQ(woke, 0u);
}

Task<void> hold_resource(Engine& eng, Resource& res, Time hold,
                         std::vector<Time>& acquired) {
  auto guard = co_await res.acquire();
  acquired.push_back(eng.now());
  co_await Delay(eng, hold);
}

TEST(Resource, SerializesBeyondCapacity) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<Time> acquired;
  for (int i = 0; i < 4; ++i) {
    eng.spawn(hold_resource(eng, res, 10 * kSec, acquired));
  }
  eng.run();
  // Two admitted at t=0, the next two after the first pair releases.
  EXPECT_EQ(acquired,
            (std::vector<Time>{0, 0, 10 * kSec, 10 * kSec}));
  EXPECT_EQ(res.available(), 2u);
}

TEST(Resource, FifoOrderUnderContention) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  auto proc = [](Engine& e, Resource& r, int id,
                 std::vector<int>& ord) -> Task<void> {
    // Stagger arrival so queue order is well defined.
    co_await Delay(e, static_cast<Time>(id));
    auto guard = co_await r.acquire();
    ord.push_back(id);
    co_await Delay(e, 1 * kSec);
  };
  for (int i = 0; i < 5; ++i) eng.spawn(proc(eng, res, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, TokenTransferredDirectlyToWaiterNotStolen) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  auto holder = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    auto g = co_await r.acquire();
    co_await Delay(e, 10);
    ord.push_back(0);
  };
  auto waiter = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 1);  // arrives while holder owns the token
    auto g = co_await r.acquire();
    ord.push_back(1);
  };
  auto late = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 10);  // arrives exactly when holder releases
    auto g = co_await r.acquire();
    ord.push_back(2);
  };
  eng.spawn(holder(eng, res, order));
  eng.spawn(waiter(eng, res, order));
  eng.spawn(late(eng, res, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(res.available(), 1u);
}

TEST(SharedLink, SingleStreamGetsPerStreamCap) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 100e9;
  cfg.per_stream_bps = 1e9;
  cfg.latency = 0;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(1'000'000'000ULL);
  };
  eng.spawn(xfer(link));
  eng.run();
  EXPECT_NEAR(to_seconds(eng.now()), 1.0, 1e-6);
}

TEST(SharedLink, ConcurrentStreamsShareCapacity) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.max_streams = 16;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(500'000'000ULL);
  };
  // Both start at t=0; snapshot fair share gives the first transfer the full
  // rate (it is alone when it starts) and the second half rate.
  eng.spawn(xfer(link));
  eng.spawn(xfer(link));
  eng.run();
  EXPECT_GE(to_seconds(eng.now()), 0.99);
  EXPECT_EQ(link.bytes_moved(), 1'000'000'000ULL);
  EXPECT_EQ(link.peak_streams(), 2u);
}

TEST(SharedLink, SmallTransfersPayEfficiencyPenalty) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.efficiency_bytes = 1024 * 1024;
  SharedLink link(eng, cfg);
  const double small = link.snapshot_rate(4096);
  const double large = link.snapshot_rate(64ull * 1024 * 1024);
  EXPECT_LT(small, 0.01 * large);
}

TEST(SharedLink, QueueingBeyondMaxStreams) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.max_streams = 1;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(1'000'000'000ULL);
  };
  eng.spawn(xfer(link));
  eng.spawn(xfer(link));
  eng.run();
  // Strictly serialized: 1s + 1s.
  EXPECT_NEAR(to_seconds(eng.now()), 2.0, 1e-6);
}

TEST(Engine, ManyProcessesScale) {
  Engine eng;
  std::vector<Time> marks;
  marks.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    eng.spawn(delay_then_mark(eng, static_cast<Time>(i) * kUs, marks));
  }
  eng.run();
  EXPECT_EQ(marks.size(), 2000u);
  EXPECT_TRUE(eng.all_roots_done());
}

TEST(Engine, SchedulingIntoThePastIsAnError) {
  Engine eng;
  auto proc = [](Engine& e) -> Task<void> {
    co_await Delay(e, 1 * kSec);
    // Force an illegal schedule directly.
    EXPECT_THROW(e.schedule(0, std::noop_coroutine()), wasp::util::SimError);
  };
  eng.spawn(proc(eng));
  eng.run();
}

// ---------------------------------------------------------------------------
// EngineQueue: the timer wheel against the heap oracle (`ctest -L engine`).

constexpr Engine::QueueKind kBothKinds[] = {Engine::QueueKind::kHeap,
                                            Engine::QueueKind::kWheel};

Engine::Options opts_for(Engine::QueueKind kind) {
  Engine::Options o;
  o.queue = kind;
  return o;
}

using MarkLog = std::vector<std::pair<int, Time>>;

Task<void> mark_after(Engine& eng, Time d, int id, MarkLog& log) {
  co_await Delay(eng, d);
  log.emplace_back(id, eng.now());
}

// One pseudo-random process: a fixed-seed LCG picks dense (FIFO-lane),
// medium, and sparse (multi-level) delays, with occasional child spawns —
// the schedule is a pure function of the seed, so both queue kinds replay
// the identical program.
Task<void> prop_proc(Engine& eng, int id, std::uint32_t seed, int steps,
                     MarkLog& log) {
  std::uint32_t x = seed;
  for (int s = 0; s < steps; ++s) {
    x = x * 1664525u + 1013904223u;
    const std::uint32_t kind = x >> 28;
    Time d;
    if (kind < 6) {
      d = x % 64;  // dense: same-instant / level-0 traffic
    } else if (kind < 13) {
      d = x % 100000;
    } else {
      d = x % (Time{1} << 26);  // sparse: lands levels deep
    }
    co_await Delay(eng, d);
    log.emplace_back(id, eng.now());
    if (kind == 15) {
      eng.spawn(mark_after(eng, x % 1000, id + 1000, log));
    }
  }
}

struct ProgramResult {
  MarkLog log;
  std::uint64_t events = 0;
  Time end = 0;
  bool operator==(const ProgramResult&) const = default;
};

ProgramResult run_program(Engine::QueueKind kind, std::uint32_t seed) {
  Engine eng(opts_for(kind));
  ProgramResult r;
  for (int p = 0; p < 16; ++p) {
    eng.spawn(prop_proc(eng, p, seed ^ (static_cast<std::uint32_t>(p) *
                                        2654435761u),
                        40, r.log));
  }
  eng.run();
  r.events = eng.events_processed();
  r.end = eng.now();
  EXPECT_TRUE(eng.all_roots_done());
  return r;
}

TEST(EngineQueue, RandomInterleavingsMatchHeapOracle) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const ProgramResult heap = run_program(Engine::QueueKind::kHeap, seed);
    const ProgramResult wheel = run_program(Engine::QueueKind::kWheel, seed);
    ASSERT_EQ(heap.events, wheel.events) << "seed " << seed;
    ASSERT_EQ(heap.end, wheel.end) << "seed " << seed;
    ASSERT_EQ(heap.log, wheel.log) << "seed " << seed;
  }
}

TEST(EngineQueue, SameInstantOrderMatchesScheduleOrderOnBothKinds) {
  for (Engine::QueueKind kind : kBothKinds) {
    Engine eng(opts_for(kind));
    MarkLog log;
    for (int i = 0; i < 64; ++i) eng.spawn(mark_after(eng, 1 * kMs, i, log));
    eng.run();
    ASSERT_EQ(log.size(), 64u);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(log[static_cast<std::size_t>(i)],
                (std::pair<int, Time>{i, 1 * kMs}));
    }
  }
}

TEST(EngineQueue, OverflowTierPreservesOrderBeyondHorizon) {
  // Delays past the wheel's 2^48 ns span land in the overflow tier and come
  // back through reseeds — order and tie-breaks must survive the detour.
  const Time far = WheelEventQueue::kHorizon;
  Engine eng(opts_for(Engine::QueueKind::kWheel));
  MarkLog log;
  eng.spawn(mark_after(eng, 3 * far + 5, 3, log));
  eng.spawn(mark_after(eng, far + 123, 1, log));
  eng.spawn(mark_after(eng, 10, 0, log));
  eng.spawn(mark_after(eng, 2 * far + 7, 2, log));
  eng.spawn(mark_after(eng, far + 123, 4, log));  // ties with id 1, FIFO after
  eng.run();
  const MarkLog want = {{0, 10},
                        {1, far + 123},
                        {4, far + 123},
                        {2, 2 * far + 7},
                        {3, 3 * far + 5}};
  EXPECT_EQ(log, want);
  EXPECT_GT(eng.wheel_stats().overflow_pushes, 0u);
  EXPECT_GE(eng.wheel_stats().overflow_reseeds, 1u);
}

TEST(EngineQueue, RunUntilThenScheduleIntoGapStaysOrdered) {
  // run_until must not advance the wheel cursor past its limit: events
  // scheduled afterwards into the (limit, next-event) gap still run first.
  for (Engine::QueueKind kind : kBothKinds) {
    Engine eng(opts_for(kind));
    MarkLog log;
    eng.spawn(mark_after(eng, 10 * kSec, 1, log));
    EXPECT_FALSE(eng.run_until(1 * kSec));
    EXPECT_EQ(eng.now(), 1 * kSec);
    EXPECT_TRUE(log.empty());
    eng.spawn(mark_after(eng, 2 * kSec, 0, log));  // absolute t = 3s
    EXPECT_TRUE(eng.run_until(20 * kSec));
    const MarkLog want = {{0, 3 * kSec}, {1, 10 * kSec}};
    EXPECT_EQ(log, want);
    EXPECT_TRUE(eng.all_roots_done());
  }
}

TEST(EngineQueue, ScheduleIntoPastThrowsSimErrorOnBothKinds) {
  // The schedule contract (at >= now) holds for either queue: release
  // builds throw SimError; debug builds additionally assert.
  for (Engine::QueueKind kind : kBothKinds) {
    Engine eng(opts_for(kind));
    auto proc = [](Engine& e) -> Task<void> {
      co_await Delay(e, 1 * kSec);
      EXPECT_THROW(e.schedule(e.now() - 1, std::noop_coroutine()),
                   wasp::util::SimError);
    };
    eng.spawn(proc(eng));
    eng.run();
    EXPECT_EQ(eng.pending_events(), 0u);
  }
}

TEST(EngineQueue, DeepChurnKeepsWheelStatsConsistent) {
  Engine eng(opts_for(Engine::QueueKind::kWheel));
  MarkLog log;
  for (int p = 0; p < 8; ++p) {
    eng.spawn(prop_proc(eng, p, 77u + static_cast<std::uint32_t>(p), 64, log));
  }
  eng.run();
  const auto& st = eng.wheel_stats();
  // Delays stay under the horizon, so no overflow traffic; every placement
  // (direct push or cascade re-placement) lands in the lane or a bucket
  // exactly once, and every pushed event is eventually popped.
  EXPECT_EQ(st.overflow_pushes, 0u);
  EXPECT_EQ(st.fifo_pushes + st.bucket_pushes,
            eng.events_processed() + st.cascaded_events);
  EXPECT_GT(st.cascades, 0u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

// ---------------------------------------------------------------------------
// FramePool: the freelist arena behind Task frame allocation.

TEST(FramePool, RecyclesCanonicalBlocks) {
  FramePool::trim_thread_cache();
  const auto before = FramePool::thread_stats();
  void* a = FramePool::allocate(200);
  FramePool::deallocate(a);
  void* b = FramePool::allocate(200);  // same 64-byte bucket
  EXPECT_EQ(a, b);
  FramePool::deallocate(b);
  const auto after = FramePool::thread_stats();
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.returns - before.returns, 2u);
  EXPECT_GT(after.cached_bytes, 0u);
}

TEST(FramePool, DistinctBucketsDoNotAlias) {
  FramePool::trim_thread_cache();
  void* small = FramePool::allocate(40);
  void* big = FramePool::allocate(1000);
  EXPECT_NE(small, big);
  FramePool::deallocate(small);
  FramePool::deallocate(big);
  // Each comes back from its own bucket.
  EXPECT_EQ(FramePool::allocate(1000), big);
  EXPECT_EQ(FramePool::allocate(40), small);
  FramePool::deallocate(small);
  FramePool::deallocate(big);
  FramePool::trim_thread_cache();
  EXPECT_EQ(FramePool::thread_stats().cached_bytes, 0u);
}

TEST(FramePool, OversizeRequestsBypassTheCache) {
  FramePool::trim_thread_cache();
  const auto before = FramePool::thread_stats();
  void* p = FramePool::allocate(FramePool::kMaxPooled + 1);
  FramePool::deallocate(p);
  const auto after = FramePool::thread_stats();
  EXPECT_EQ(after.oversize - before.oversize, 1u);
  EXPECT_EQ(after.returns - before.returns, 0u);
  EXPECT_EQ(after.cached_bytes, 0u);
}

TEST(FramePool, CrossThreadFreeJoinsTheFreeingThreadsCache) {
  // Blocks carry no thread affinity: frames allocated here may be freed on
  // another thread (its cache adopts them) and vice versa.
  std::vector<void*> blocks;
  for (int i = 0; i < 32; ++i) blocks.push_back(FramePool::allocate(256));
  std::thread t([&blocks] {
    const auto before = FramePool::thread_stats();
    for (void* p : blocks) FramePool::deallocate(p);
    const auto after = FramePool::thread_stats();
    EXPECT_EQ(after.returns - before.returns, 32u);
    // Reuse them on this thread, then hand fresh ones back to main.
    for (void*& p : blocks) p = FramePool::allocate(256);
    FramePool::trim_thread_cache();
  });
  t.join();
  for (void* p : blocks) FramePool::deallocate(p);
  FramePool::trim_thread_cache();
}

TEST(FramePool, TaskFramesHitTheCacheAfterWarmup) {
  MarkLog log;
  // Root frames return to the cache when their Engine is destroyed, so the
  // first scoped run warms the bucket and the second must recycle it.
  {
    Engine eng;
    for (int i = 0; i < 100; ++i) eng.spawn(mark_after(eng, 1, i, log));
    eng.run();
  }
  const auto warm = FramePool::thread_stats();
  {
    Engine eng;
    for (int i = 0; i < 100; ++i) eng.spawn(mark_after(eng, 1, i, log));
    eng.run();
  }
  const auto after = FramePool::thread_stats();
  EXPECT_GE(after.hits - warm.hits, 100u);
  EXPECT_EQ(after.misses - warm.misses, 0u);
  EXPECT_EQ(after.oversize - warm.oversize, 0u);
}

}  // namespace
}  // namespace wasp::sim
