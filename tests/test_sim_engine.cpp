// Unit tests for the discrete-event engine, Task coroutines, and the
// synchronization primitives they rest on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace wasp::sim {
namespace {

Task<void> delay_then_mark(Engine& eng, Time d, std::vector<Time>& out) {
  co_await Delay(eng, d);
  out.push_back(eng.now());
}

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, DelayAdvancesSimulatedClock) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 5 * kSec, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 5 * kSec);
  EXPECT_TRUE(eng.all_roots_done());
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 0, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 0u);
}

TEST(Engine, EventsAtSameInstantRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  auto proc = [](Engine& e, int id, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 1 * kMs);
    ord.push_back(id);
  };
  for (int i = 0; i < 8; ++i) eng.spawn(proc(eng, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, InterleavesByTimestamp) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 3 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 1 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 2 * kSec, marks));
  eng.run();
  EXPECT_EQ(marks, (std::vector<Time>{1 * kSec, 2 * kSec, 3 * kSec}));
}

Task<int> child_value(Engine& eng) {
  co_await Delay(eng, 10);
  co_return 42;
}

Task<void> parent_await(Engine& eng, int& out) {
  out = co_await child_value(eng);
}

TEST(Task, NestedAwaitPropagatesValue) {
  Engine eng;
  int value = 0;
  eng.spawn(parent_await(eng, value));
  eng.run();
  EXPECT_EQ(value, 42);
}

Task<void> thrower(Engine& eng) {
  co_await Delay(eng, 1);
  throw std::runtime_error("boom");
}

Task<void> catcher(Engine& eng, bool& caught) {
  try {
    co_await thrower(eng);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  eng.spawn(catcher(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ExceptionEscapingRootRethrownFromRun) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(delay_then_mark(eng, 1 * kSec, marks));
  eng.spawn(delay_then_mark(eng, 10 * kSec, marks));
  EXPECT_FALSE(eng.run_until(5 * kSec));
  EXPECT_EQ(marks.size(), 1u);
  EXPECT_EQ(eng.now(), 5 * kSec);
  EXPECT_FALSE(eng.all_roots_done());
  EXPECT_TRUE(eng.run_until(20 * kSec));
  EXPECT_EQ(marks.size(), 2u);
}

TEST(Event, BroadcastWakesAllWaiters) {
  Engine eng;
  Event ev(eng);
  std::vector<Time> woke;
  auto waiter = [](Engine& e, Event& event, std::vector<Time>& w) -> Task<void> {
    co_await event.wait();
    w.push_back(e.now());
  };
  auto setter = [](Engine& e, Event& event) -> Task<void> {
    co_await Delay(e, 7 * kSec);
    event.set();
  };
  for (int i = 0; i < 3; ++i) eng.spawn(waiter(eng, ev, woke));
  eng.spawn(setter(eng, ev));
  eng.run();
  EXPECT_EQ(woke, (std::vector<Time>{7 * kSec, 7 * kSec, 7 * kSec}));
}

TEST(Event, WaitOnSetEventIsImmediate) {
  Engine eng;
  Event ev(eng);
  ev.set();
  Time woke = 123;
  auto waiter = [](Engine& e, Event& event, Time& w) -> Task<void> {
    co_await event.wait();
    w = e.now();
  };
  eng.spawn(waiter(eng, ev, woke));
  eng.run();
  EXPECT_EQ(woke, 0u);
}

Task<void> hold_resource(Engine& eng, Resource& res, Time hold,
                         std::vector<Time>& acquired) {
  auto guard = co_await res.acquire();
  acquired.push_back(eng.now());
  co_await Delay(eng, hold);
}

TEST(Resource, SerializesBeyondCapacity) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<Time> acquired;
  for (int i = 0; i < 4; ++i) {
    eng.spawn(hold_resource(eng, res, 10 * kSec, acquired));
  }
  eng.run();
  // Two admitted at t=0, the next two after the first pair releases.
  EXPECT_EQ(acquired,
            (std::vector<Time>{0, 0, 10 * kSec, 10 * kSec}));
  EXPECT_EQ(res.available(), 2u);
}

TEST(Resource, FifoOrderUnderContention) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  auto proc = [](Engine& e, Resource& r, int id,
                 std::vector<int>& ord) -> Task<void> {
    // Stagger arrival so queue order is well defined.
    co_await Delay(e, static_cast<Time>(id));
    auto guard = co_await r.acquire();
    ord.push_back(id);
    co_await Delay(e, 1 * kSec);
  };
  for (int i = 0; i < 5; ++i) eng.spawn(proc(eng, res, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, TokenTransferredDirectlyToWaiterNotStolen) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  auto holder = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    auto g = co_await r.acquire();
    co_await Delay(e, 10);
    ord.push_back(0);
  };
  auto waiter = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 1);  // arrives while holder owns the token
    auto g = co_await r.acquire();
    ord.push_back(1);
  };
  auto late = [](Engine& e, Resource& r, std::vector<int>& ord) -> Task<void> {
    co_await Delay(e, 10);  // arrives exactly when holder releases
    auto g = co_await r.acquire();
    ord.push_back(2);
  };
  eng.spawn(holder(eng, res, order));
  eng.spawn(waiter(eng, res, order));
  eng.spawn(late(eng, res, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(res.available(), 1u);
}

TEST(SharedLink, SingleStreamGetsPerStreamCap) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 100e9;
  cfg.per_stream_bps = 1e9;
  cfg.latency = 0;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(1'000'000'000ULL);
  };
  eng.spawn(xfer(link));
  eng.run();
  EXPECT_NEAR(to_seconds(eng.now()), 1.0, 1e-6);
}

TEST(SharedLink, ConcurrentStreamsShareCapacity) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.max_streams = 16;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(500'000'000ULL);
  };
  // Both start at t=0; snapshot fair share gives the first transfer the full
  // rate (it is alone when it starts) and the second half rate.
  eng.spawn(xfer(link));
  eng.spawn(xfer(link));
  eng.run();
  EXPECT_GE(to_seconds(eng.now()), 0.99);
  EXPECT_EQ(link.bytes_moved(), 1'000'000'000ULL);
  EXPECT_EQ(link.peak_streams(), 2u);
}

TEST(SharedLink, SmallTransfersPayEfficiencyPenalty) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.efficiency_bytes = 1024 * 1024;
  SharedLink link(eng, cfg);
  const double small = link.snapshot_rate(4096);
  const double large = link.snapshot_rate(64ull * 1024 * 1024);
  EXPECT_LT(small, 0.01 * large);
}

TEST(SharedLink, QueueingBeyondMaxStreams) {
  Engine eng;
  SharedLink::Config cfg;
  cfg.capacity_bps = 1e9;
  cfg.per_stream_bps = 1e9;
  cfg.max_streams = 1;
  SharedLink link(eng, cfg);
  auto xfer = [](SharedLink& l) -> Task<void> {
    co_await l.transfer(1'000'000'000ULL);
  };
  eng.spawn(xfer(link));
  eng.spawn(xfer(link));
  eng.run();
  // Strictly serialized: 1s + 1s.
  EXPECT_NEAR(to_seconds(eng.now()), 2.0, 1e-6);
}

TEST(Engine, ManyProcessesScale) {
  Engine eng;
  std::vector<Time> marks;
  marks.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    eng.spawn(delay_then_mark(eng, static_cast<Time>(i) * kUs, marks));
  }
  eng.run();
  EXPECT_EQ(marks.size(), 2000u);
  EXPECT_TRUE(eng.all_roots_done());
}

TEST(Engine, SchedulingIntoThePastIsAnError) {
  Engine eng;
  auto proc = [](Engine& e) -> Task<void> {
    co_await Delay(e, 1 * kSec);
    // Force an illegal schedule directly.
    EXPECT_THROW(e.schedule(0, std::noop_coroutine()), wasp::util::SimError);
  };
  eng.spawn(proc(eng));
  eng.run();
}

}  // namespace
}  // namespace wasp::sim
