// Deterministic fault injection (sim/faults.*) and the error paths it
// flushes out.
//
// The contract under test: the same FaultPlan seed yields byte-identical
// traces and bit-identical profiles across scenario-runner job counts,
// trace-store backends, the pattern-vs-imperative launch paths, and
// reruns — faults perturb the simulated run, never the determinism. The
// degradation half covers real disk errors: a full disk during spill or
// trace-log write must surface one diagnosed SimError and leave no
// truncated files behind.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/spill_store.hpp"
#include "pattern/pattern.hpp"
#include "profile_test_util.hpp"
#include "sim/faults.hpp"
#include "trace/log_io.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "workloads/registry.hpp"

namespace wasp {
namespace {

using testutil::expect_profiles_identical;

// Moderate rates on the PFS: enough traffic to guarantee injected faults
// on the hacc-fpp test-scale run without exhausting any retry budget.
constexpr const char* kSpec =
    "seed=7; gpfs: eio=0.3, slow=0.5, spike=20ms";

cluster::ClusterSpec test_cluster(int nodes = 4) {
  auto spec = cluster::lassen(nodes);
  spec.node.cpu_cores = 8;
  return spec;
}

workloads::RegistryEntry hacc_entry() {
  const int index = workloads::find_workload("hacc-fpp");
  EXPECT_GE(index, 0);
  return workloads::paper_workloads()[static_cast<std::size_t>(index)];
}

advisor::RunConfig faulted_cfg(const char* spec = kSpec) {
  advisor::RunConfig cfg;
  cfg.faults = sim::FaultPlan::parse(spec);
  return cfg;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- FaultPlanSpec: the spec grammar -------------------------------------

TEST(FaultPlanSpec, RoundTripsThroughCanonicalSpec) {
  const auto plan = sim::FaultPlan::parse(
      "seed=42; retry: attempts=6, backoff=2ms, mult=1.5, max=500ms; "
      "lustre: eio=0.01, enospc=0.005, meta=0.02, slow=0.1, spike=15ms, "
      "fail_latency=3ms, capacity=64MB, from=100ms, until=2s; "
      "*: slow=0.01");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.retry.max_attempts, 6u);
  EXPECT_EQ(plan.retry.backoff, 2 * sim::kMs);
  EXPECT_EQ(plan.retry.max_backoff, 500 * sim::kMs);
  ASSERT_EQ(plan.targets.size(), 2u);
  EXPECT_EQ(plan.targets[0].fs, "lustre");
  EXPECT_EQ(plan.targets[0].capacity, 64'000'000u);  // decimal MB, like the tables
  EXPECT_EQ(plan.targets[0].from, 100 * sim::kMs);
  EXPECT_EQ(plan.targets[0].until, 2 * sim::kSec);
  EXPECT_EQ(plan.targets[1].fs, "*");

  // parse(to_spec()) is the identity on the canonical form.
  const std::string canon = plan.to_spec();
  EXPECT_EQ(sim::FaultPlan::parse(canon).to_spec(), canon);
}

TEST(FaultPlanSpec, DefaultsAndMinimalSpec) {
  const auto plan = sim::FaultPlan::parse("*: eio=0.1");
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_EQ(plan.retry.max_attempts, 4u);
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(sim::FaultPlan{}.enabled());
  // Defaults are elided from the canonical form.
  EXPECT_EQ(plan.to_spec(), "seed=1; *: eio=0.1");
}

TEST(FaultPlanSpec, MalformedSpecsNameTheOffendingToken) {
  const auto expect_bad = [](const char* spec, const char* needle) {
    try {
      sim::FaultPlan::parse(spec);
      FAIL() << "parse accepted: " << spec;
    } catch (const util::SimError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "diagnostic for '" << spec << "' was: " << e.what();
    }
  };
  expect_bad("bogus", "bogus");
  expect_bad("seed=7", "no fault targets");
  expect_bad("lustre: wat=1", "wat");
  expect_bad("lustre: eio=nope", "nope");
  expect_bad("gpfs: eio=1.5", "eio");
  expect_bad("retry: attempts=zero", "zero");
}

// ---- FaultDeterminism: same seed, same bytes -----------------------------

TEST(FaultDeterminism, ProfilesIdenticalAcrossJobCounts) {
  const auto entry = hacc_entry();
  const auto make_scenarios = [&](std::size_t n) {
    std::vector<workloads::Scenario> scenarios;
    for (std::size_t i = 0; i < n; ++i) {
      scenarios.push_back({entry.id, test_cluster(), entry.make_test,
                           faulted_cfg(), analysis::Analyzer::Options{}, {}});
    }
    return scenarios;
  };
  const auto serial = workloads::run_many(make_scenarios(1), 1);
  const auto parallel = workloads::run_many(make_scenarios(4), 4);
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(parallel.size(), 4u);
  for (const auto& out : parallel) {
    expect_profiles_identical(serial[0].profile, out.profile);
  }
}

TEST(FaultDeterminism, ProfilesIdenticalAcrossBackends) {
  const auto entry = hacc_entry();
  runtime::Simulation mem_sim(test_cluster());
  const auto mem = workloads::run_with(mem_sim, entry.make_test(),
                                       faulted_cfg(),
                                       analysis::Analyzer::Options{});
  runtime::SpillPolicy policy;
  policy.dir = temp_path("faults.spill");
  policy.flush_rows = 1000;
  policy.chunk_rows = 512;
  runtime::Simulation spill_sim(test_cluster());
  const auto spilled =
      workloads::run_spilled(spill_sim, entry.make_test(), faulted_cfg(),
                             analysis::Analyzer::Options{}, policy, entry.id);
  expect_profiles_identical(mem.profile, spilled.profile);
}

TEST(FaultDeterminism, TraceLogsByteIdenticalAcrossReruns) {
  const auto entry = hacc_entry();
  const auto run_and_dump = [&](const char* name) {
    runtime::Simulation sim(test_cluster());
    workloads::run_with(sim, entry.make_test(), faulted_cfg(),
                        analysis::Analyzer::Options{});
    // Faults actually fired, and the retried attempts landed in the trace.
    EXPECT_GT(sim.faults()->stats().total_injected(), 0u);
    EXPECT_GT(sim.faults()->stats().retries, 0u);
    EXPECT_GT(sim.faults()->stats().spikes, 0u);
    const std::string path = temp_path(name);
    trace::write_log(path, sim.tracer());
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  const std::string a = run_and_dump("faults_a.wtrc");
  const std::string b = run_and_dump("faults_b.wtrc");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultDeterminism, FaultedRunDiffersFromCleanRun) {
  const auto entry = hacc_entry();
  runtime::Simulation clean_sim(test_cluster());
  const auto clean = workloads::run_with(clean_sim, entry.make_test(),
                                         advisor::RunConfig{},
                                         analysis::Analyzer::Options{});
  EXPECT_EQ(clean_sim.faults(), nullptr);
  runtime::Simulation faulted_sim(test_cluster());
  const auto faulted = workloads::run_with(faulted_sim, entry.make_test(),
                                           faulted_cfg(),
                                           analysis::Analyzer::Options{});
  // Retries re-enter the virtual clock and appear as extra trace ops.
  EXPECT_GT(faulted.profile.job_runtime_sec, clean.profile.job_runtime_sec);
  EXPECT_GT(faulted.profile.totals.read_ops + faulted.profile.totals.write_ops,
            clean.profile.totals.read_ops + clean.profile.totals.write_ops);
}

TEST(FaultDeterminism, ExhaustedRetriesThrowDiagnosedFaultError) {
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  try {
    workloads::run_with(sim, entry.make_test(),
                        faulted_cfg("seed=3; gpfs: eio=1"),
                        analysis::Analyzer::Options{});
    FAIL() << "run survived eio=1";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.kind(), sim::FaultKind::kEio);
    EXPECT_NE(std::string(e.what()).find("failed after"), std::string::npos)
        << e.what();
  }
  EXPECT_GT(sim.faults()->stats().exhausted, 0u);
}

TEST(FaultDeterminism, CapacityClampSurfacesAsEnospc) {
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  try {
    workloads::run_with(sim, entry.make_test(),
                        faulted_cfg("seed=3; gpfs: capacity=1MB"),
                        analysis::Analyzer::Options{});
    FAIL() << "run survived a 1MB gpfs";
  } catch (const sim::FaultError& e) {
    EXPECT_EQ(e.kind(), sim::FaultKind::kEnospc);
    EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos)
        << e.what();
  }
  EXPECT_GT(sim.faults()->stats().enospc_errors, 0u);
}

// ---- FaultEquivalence: pattern replay == imperative oracle ---------------

TEST(FaultEquivalence, PatternAndReferenceTracesIdenticalUnderFaults) {
  const auto entry = hacc_entry();
  const auto traced = [&](bool reference) {
    auto w = entry.make_test();
    if (reference) {
      EXPECT_TRUE(static_cast<bool>(w.launch_reference));
      w.launch = w.launch_reference;
    }
    runtime::Simulation sim(test_cluster());
    workloads::run_with(sim, w, faulted_cfg(), analysis::Analyzer::Options{});
    EXPECT_GT(sim.faults()->stats().total_injected(), 0u);
    return sim.tracer().records();
  };
  const auto replayed = traced(false);
  const auto oracle = traced(true);
  ASSERT_EQ(replayed.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_TRUE(replayed[i] == oracle[i]) << "record " << i << " diverges";
  }
}

TEST(FaultEquivalence, PlanRoundTripsThroughPatternYaml) {
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  auto w = entry.make_test();
  ASSERT_TRUE(static_cast<bool>(w.compile));
  auto pat = w.compile(sim, advisor::RunConfig{});
  pat.faults = sim::FaultPlan::parse(kSpec);
  const std::string yaml = pattern::to_yaml(pat);
  const auto reparsed = pattern::pattern_from_yaml(yaml);
  EXPECT_EQ(reparsed.faults.to_spec(), pat.faults.to_spec());
  // Dump is deterministic with the plan aboard.
  EXPECT_EQ(pattern::to_yaml(reparsed), yaml);
}

// ---- FaultDegradation: real disk errors, diagnosed -----------------------

bool dev_full_available() {
  std::error_code ec;
  return std::filesystem::is_character_file("/dev/full", ec);
}

TEST(FaultDegradation, TraceLogWriteToFullDiskIsDiagnosed) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  workloads::run_with(sim, entry.make_test(), advisor::RunConfig{},
                      analysis::Analyzer::Options{});
  try {
    trace::write_log("/dev/full", sim.tracer());
    FAIL() << "write_log to /dev/full succeeded";
  } catch (const util::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("short write to trace log"), std::string::npos) << msg;
    EXPECT_NE(msg.find("/dev/full"), std::string::npos) << msg;
  }
  // The cleanup path must never unlink a device node.
  EXPECT_TRUE(std::filesystem::is_character_file("/dev/full"));
}

TEST(FaultDegradation, TraceLogWriteRemovesPartialFile) {
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  workloads::run_with(sim, entry.make_test(), advisor::RunConfig{},
                      analysis::Analyzer::Options{});
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  // A symlinked output behaves like any full target; on failure the link
  // (not the device) is removed, so no stale half-written path remains.
  const std::string link = temp_path("full_link.wtrc");
  std::filesystem::remove(link);
  std::filesystem::create_symlink("/dev/full", link);
  EXPECT_THROW(trace::write_log(link, sim.tracer()), util::SimError);
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::symlink_status(link)));
  EXPECT_TRUE(std::filesystem::is_character_file("/dev/full"));
}

TEST(FaultDegradation, SpillFlushToFullDiskRemovesPartialChunk) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  const auto records = trace::synthetic_records(300);
  analysis::SpillColumnStore store(
      {.dir = temp_path("enospc.spill"), .chunk_rows = 100});
  const std::string victim = store.chunk_file_path(0);
  std::filesystem::create_symlink("/dev/full", victim);
  try {
    // The first flush (row 100) writes through the symlink into /dev/full.
    store.append(records);
    store.finalize();
    FAIL() << "spill flush to /dev/full succeeded";
  } catch (const util::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("short write to spill chunk"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
    EXPECT_NE(msg.find(victim), std::string::npos) << msg;
  }
  // The partial chunk (here: the symlink) is gone, the device untouched.
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::symlink_status(victim)));
  EXPECT_TRUE(std::filesystem::is_character_file("/dev/full"));
}

TEST(FaultDegradation, TruncatedTraceLogNamesThePath) {
  const auto entry = hacc_entry();
  runtime::Simulation sim(test_cluster());
  workloads::run_with(sim, entry.make_test(), advisor::RunConfig{},
                      analysis::Analyzer::Options{});
  const std::string path = temp_path("truncated.wtrc");
  trace::write_log(path, sim.tracer());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  try {
    trace::read_log(path);
    FAIL() << "read_log accepted a truncated file";
  } catch (const util::SimError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(FaultDegradation, MissingSpillChunkNamesPathAndErrno) {
  const auto records = trace::synthetic_records(250);
  analysis::SpillColumnStore store(
      {.dir = temp_path("missing.spill"), .chunk_rows = 100,
       .max_resident_chunks = 1, .prefetch = false});
  store.append(records);
  store.finalize();
  const std::string victim = store.chunk_file_path(2);
  // Chunk 2 may still be resident from the append; scan forward so the LRU
  // (capacity 1) evicts it, then delete the file and force a reload.
  (void)store.row(0);
  (void)store.row(100);
  std::filesystem::remove(victim);
  try {
    (void)store.row(200);
    FAIL() << "row() read a deleted chunk";
  } catch (const util::SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot open spill chunk"), std::string::npos) << msg;
    EXPECT_NE(msg.find(victim), std::string::npos) << msg;
    EXPECT_NE(msg.find("No such file"), std::string::npos) << msg;
  }
}

// ---- CliParse: checked integer parsing for the tools ---------------------

TEST(CliParse, ParseIntIsStrict) {
  EXPECT_EQ(util::parse_int("42"), 42);
  EXPECT_EQ(util::parse_int("-7"), -7);
  EXPECT_EQ(util::parse_int("banana"), std::nullopt);
  EXPECT_EQ(util::parse_int("12abc"), std::nullopt);
  EXPECT_EQ(util::parse_int(""), std::nullopt);
  EXPECT_EQ(util::parse_int("99999999999999999999999"), std::nullopt);
  EXPECT_EQ(util::parse_uint("42"), 42u);
  EXPECT_EQ(util::parse_uint("-7"), std::nullopt);
  EXPECT_EQ(util::parse_uint("4.5"), std::nullopt);
}

using CliParseDeathTest = ::testing::Test;

TEST(CliParseDeathTest, BadFlagValueExitsTwoNamingTheFlag) {
  EXPECT_EXIT(util::cli_int("--jobs", "banana"),
              ::testing::ExitedWithCode(2), "bad value for --jobs");
  EXPECT_EXIT(util::cli_uint("--chunk-rows", "-3"),
              ::testing::ExitedWithCode(2), "bad value for --chunk-rows");
}

}  // namespace
}  // namespace wasp
