// Unit tests for util: formatting, stats, histograms, YAML, tables, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "util/yaml.hpp"

namespace wasp::util {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(999), "999B");
  EXPECT_EQ(format_bytes(4096), "4.10KB");
  EXPECT_EQ(format_bytes(16 * kMB), "16MB");
  EXPECT_EQ(format_bytes(1500 * kGB), "1.50TB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(64e9), "64GB/s");
  EXPECT_EQ(format_rate(95e6), "95MB/s");
  EXPECT_EQ(format_rate(3.5e6), "3.50MB/s");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(664), "664s");
  EXPECT_EQ(format_seconds(0.0003), "300us");
  EXPECT_EQ(format_seconds(0.45), "450ms");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(format_percent(0.75), "75%");
  EXPECT_EQ(format_percent(0.015), "1.5%");
  EXPECT_EQ(format_percent(1.0), "100%");
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(std::sqrt(s.variance()), 2.138, 0.01);
}

TEST(RunningStats, WeightedAddMatchesRepeatedAdd) {
  RunningStats a;
  RunningStats b;
  a.add_weighted(3.0, 1000);
  a.add(7.0);
  for (int i = 0; i < 1000; ++i) b.add(3.0);
  b.add(7.0);
  EXPECT_NEAR(a.mean(), b.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-6);
}

TEST(RunningStats, MergeEquivalentToCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(percentile(v, 0), 1);
  EXPECT_EQ(percentile(v, 50), 5);
  EXPECT_EQ(percentile(v, 100), 10);
  EXPECT_THROW(percentile({}, 50), SimError);
}

TEST(SizeHistogram, PaperBucketsClassification) {
  auto h = SizeHistogram::paper_buckets();
  h.add(1024);              // <4KB
  h.add(32 * kKiB);         // <64KB
  h.add(512 * kKiB);        // <1MB
  h.add(8 * kMiB);          // <16MB
  h.add(64 * kMiB);         // >=16MB
  EXPECT_EQ(h.num_buckets(), 5u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.bucket_label(0), "<4.10KB");
  EXPECT_EQ(h.total_count(), 5u);
}

TEST(SizeHistogram, WeightedAddAndBandwidth) {
  auto h = SizeHistogram::paper_buckets();
  h.add(4096, 100, 409600, 2.0);
  EXPECT_EQ(h.count(1), 100u);  // 4096 is not < 4096; lands in <64KB
  EXPECT_EQ(h.bytes(1), 409600u);
  EXPECT_DOUBLE_EQ(h.bandwidth(1), 204800.0);
  EXPECT_DOUBLE_EQ(h.bandwidth(0), 0.0);
}

TEST(SizeHistogram, MergeRequiresSameEdges) {
  auto a = SizeHistogram::paper_buckets();
  auto b = SizeHistogram::paper_buckets();
  b.add(1, 3);
  a.merge(b);
  EXPECT_EQ(a.count(0), 3u);
  SizeHistogram c({kMiB});
  EXPECT_THROW(a.merge(c), SimError);
}

TEST(Yaml, NestedMapsAndSequences) {
  yaml::Writer y;
  y.scalar("workload", "CM1");
  y.begin_map("job");
  y.scalar("nodes", 32);
  y.begin_seq("apps");
  y.begin_seq_item_map();
  y.scalar("name", "cm1");
  y.scalar("procs", 1280);
  y.end_map();
  y.end_seq();
  y.end_map();
  const std::string out = y.str();
  EXPECT_NE(out.find("workload: CM1"), std::string::npos);
  EXPECT_NE(out.find("  nodes: 32"), std::string::npos);
  EXPECT_NE(out.find("    - name: cm1"), std::string::npos);
  EXPECT_NE(out.find("      procs: 1280"), std::string::npos);
}

TEST(Yaml, QuotesSpecialCharacters) {
  yaml::Writer y;
  y.scalar("path", "/p/gpfs1: data");
  EXPECT_NE(y.str().find("\"/p/gpfs1: data\""), std::string::npos);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t("title");
  t.set_header({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(7);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  EXPECT_NE(s1.next(), s2.next());
}

TEST(Rng, UniformInRange) {
  Rng r(123);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(99);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(s.variance()), 2.0, 0.1);
}

TEST(Rng, GammaMeanMatchesShapeTimesScale) {
  Rng r(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.gamma(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 6.0, 0.2);
}

TEST(Check, ThrowsWithMessage) {
  try {
    WASP_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}

}  // namespace
}  // namespace wasp::util
