// Rule-engine tests: each §IV-D rule fires exactly on its attribute
// conditions and rewrites the RunConfig correctly.
#include <gtest/gtest.h>

#include "advisor/rules.hpp"

namespace wasp::advisor {
namespace {

/// A characterization resembling CosmoFlow's (metadata-heavy shared-file
/// HDF5 reads with free node memory).
charz::WorkloadCharacterization cosmoflow_like() {
  charz::WorkloadCharacterization c;
  c.workload = "cosmo";
  c.job.nodes = 32;
  c.job.node_local_bb_dirs = "/dev/shm";
  c.workflow.shared_files = 49664;
  c.workflow.fpp_files = 0;
  c.workflow.num_apps = 1;
  c.workflow.io_amount = 1500ull * util::kGB;
  charz::ApplicationEntity app;
  app.name = "cosmoflow";
  app.interface = "HDF5";
  c.applications.push_back(app);
  c.high_level_io.data_granularity = util::kMiB;
  c.high_level_io.meta_granularity = 4 * util::kKiB;
  c.high_level_io.access_pattern = "Seq";
  c.middleware.memory_per_node = 196 * util::kGiB;
  charz::NodeLocalStorageEntity shm;
  shm.dir = "/dev/shm";
  shm.capacity_per_node = 128 * util::kGiB;
  c.node_local.push_back(shm);
  c.dataset.format = "HDF5";
  c.dataset.size = 1500ull * util::kGB;
  c.dataset.io_amount = 1500ull * util::kGB;
  c.dataset.data_ops_fraction = 0.02;  // metadata storm
  return c;
}

/// A characterization resembling Montage's (multi-app workflow exchanging
/// small-granularity intermediate files).
charz::WorkloadCharacterization montage_like() {
  charz::WorkloadCharacterization c;
  c.workload = "montage";
  c.job.nodes = 32;
  c.job.node_local_bb_dirs = "/dev/shm";
  c.workflow.num_apps = 5;
  c.workflow.has_app_data_dependency = true;
  c.workflow.io_amount = 53ull * util::kGB;
  charz::ApplicationEntity app;
  app.name = "mAddMPI";
  app.interface = "STDIO";
  c.applications.push_back(app);
  c.high_level_io.data_granularity = 32 * util::kKiB;
  c.high_level_io.meta_granularity = 4 * util::kKiB;
  c.high_level_io.access_pattern = "Seq";
  charz::NodeLocalStorageEntity shm;
  shm.dir = "/dev/shm";
  shm.capacity_per_node = 128 * util::kGiB;
  c.node_local.push_back(shm);
  c.dataset.format = "bin";
  c.dataset.data_ops_fraction = 0.99;
  return c;
}

bool has_rule(const std::vector<Recommendation>& recs,
              const std::string& id) {
  for (const auto& r : recs) {
    if (r.id == id) return true;
  }
  return false;
}

TEST(RuleEngine, PreloadFiresForCosmoflowProfile) {
  RuleEngine engine;
  auto recs = engine.evaluate(cosmoflow_like());
  ASSERT_TRUE(has_rule(recs, "preload-input"));
  auto cfg = RuleEngine::configure(recs);
  EXPECT_TRUE(cfg.preload_input_to_node_local);
  EXPECT_EQ(cfg.node_local_tier, "shm");
}

TEST(RuleEngine, PreloadDoesNotFireWhenShardTooBig) {
  auto c = cosmoflow_like();
  c.job.nodes = 2;  // 750GB per node cannot fit 128GB shm
  RuleEngine engine;
  EXPECT_FALSE(has_rule(engine.evaluate(c), "preload-input"));
}

TEST(RuleEngine, PreloadDoesNotFireWhenDataOpsDominate) {
  auto c = cosmoflow_like();
  c.dataset.data_ops_fraction = 0.99;  // no metadata problem
  RuleEngine engine;
  EXPECT_FALSE(has_rule(engine.evaluate(c), "preload-input"));
}

TEST(RuleEngine, IntermediatesRuleFiresForMontageProfile) {
  RuleEngine engine;
  auto recs = engine.evaluate(montage_like());
  ASSERT_TRUE(has_rule(recs, "intermediates-node-local"));
  auto cfg = RuleEngine::configure(recs);
  EXPECT_TRUE(cfg.intermediates_to_node_local);
}

TEST(RuleEngine, IntermediatesRuleNeedsAppDependency) {
  auto c = montage_like();
  c.workflow.has_app_data_dependency = false;
  RuleEngine engine;
  EXPECT_FALSE(has_rule(engine.evaluate(c), "intermediates-node-local"));
}

TEST(RuleEngine, StripeSizeMatchesDominantGranularity) {
  auto c = montage_like();
  c.high_level_io.data_granularity = 16 * util::kMiB;
  RuleEngine engine;
  auto recs = engine.evaluate(c);
  ASSERT_TRUE(has_rule(recs, "stripe-size"));
  auto cfg = RuleEngine::configure(recs);
  EXPECT_EQ(cfg.stripe_size, 16 * util::kMiB);
}

TEST(RuleEngine, StripeRuleSkipsSmallOrDefaultGranularity) {
  RuleEngine engine;
  auto c = montage_like();
  c.high_level_io.data_granularity = 4 * util::kKiB;
  EXPECT_FALSE(has_rule(engine.evaluate(c), "stripe-size"));
  c.high_level_io.data_granularity = util::kMiB;  // already the default
  EXPECT_FALSE(has_rule(engine.evaluate(c), "stripe-size"));
}

TEST(RuleEngine, LockingDisabledOnlyWithoutDependencies) {
  RuleEngine engine;
  auto hacc = cosmoflow_like();
  hacc.workflow.has_app_data_dependency = false;
  hacc.applications[0].has_process_data_dependency = false;
  EXPECT_TRUE(has_rule(engine.evaluate(hacc), "disable-locking"));

  auto dep = montage_like();  // has app dependency
  EXPECT_FALSE(has_rule(engine.evaluate(dep), "disable-locking"));
}

TEST(RuleEngine, StdioBufferRuleRequiresStdioAndSmallSeqAccess) {
  RuleEngine engine;
  auto c = montage_like();
  ASSERT_TRUE(has_rule(engine.evaluate(c), "stdio-buffer"));
  auto cfg = RuleEngine::configure(engine.evaluate(c));
  EXPECT_EQ(cfg.stdio_buffer, util::kMiB);

  c.applications[0].interface = "POSIX";
  EXPECT_FALSE(has_rule(engine.evaluate(c), "stdio-buffer"));
}

TEST(RuleEngine, Hdf5ChunkingForMetadataHeavyHdf5) {
  RuleEngine engine;
  auto recs = engine.evaluate(cosmoflow_like());
  ASSERT_TRUE(has_rule(recs, "hdf5-chunking"));
  auto cfg = RuleEngine::configure(recs);
  EXPECT_TRUE(cfg.hdf5_chunking);
  EXPECT_GE(cfg.hdf5_chunk_size, util::kMiB);
}

TEST(RuleEngine, PlacementRuleForMultiAppWorkflows) {
  RuleEngine engine;
  ASSERT_TRUE(has_rule(engine.evaluate(montage_like()),
                       "locality-placement"));
  auto cfg = RuleEngine::configure(engine.evaluate(montage_like()));
  EXPECT_TRUE(cfg.locality_aware_placement);
  EXPECT_FALSE(has_rule(engine.evaluate(cosmoflow_like()),
                        "locality-placement"));
}

TEST(RuleEngine, RationaleCitesAttributes) {
  RuleEngine engine;
  for (const auto& r : engine.evaluate(cosmoflow_like())) {
    EXPECT_FALSE(r.rationale.empty()) << r.id;
    EXPECT_NE(r.rationale.find('='), std::string::npos) << r.id;
  }
}

TEST(RuleEngine, ReportMentionsEveryRecommendation) {
  RuleEngine engine;
  auto recs = engine.evaluate(montage_like());
  const std::string report = RuleEngine::report(recs);
  for (const auto& r : recs) {
    EXPECT_NE(report.find(r.id), std::string::npos);
  }
  EXPECT_NE(RuleEngine::report({}).find("no workload-aware"),
            std::string::npos);
}

TEST(RuleEngine, ConfigureStartsFromGivenBase) {
  RunConfig base;
  base.stripe_count = 8;
  auto cfg = RuleEngine::configure({}, base);
  EXPECT_EQ(cfg.stripe_count, 8);
}

}  // namespace
}  // namespace wasp::advisor
