// Property-style parameterized sweeps over simulator invariants:
//  * byte conservation through every interface layer,
//  * trace/op-count exactness under coalescing,
//  * monotonic simulated time and deterministic replay,
//  * fair-share bandwidth bounds on the shared link,
//  * phase partitions covering all I/O ops.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/analyzer.hpp"
#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "sim_test_util.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"

namespace wasp {
namespace {

using runtime::Proc;
using runtime::Simulation;
using sim::Task;

// ---------------------------------------------------------------------------
// STDIO buffering conservation: for any (op size, count, buffer size), the
// filesystem receives exactly the bytes the user wrote, and the trace keeps
// the exact user op count.
// ---------------------------------------------------------------------------
using StdioCase = std::tuple<std::size_t, std::uint32_t, std::size_t>;

class StdioConservation : public ::testing::TestWithParam<StdioCase> {};

TEST_P(StdioConservation, BytesAndOpsConserved) {
  const auto [size, count, buffer] = GetParam();
  Simulation sim(cluster::tiny(2));
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a, fs::Bytes sz,
                 std::uint32_t n, fs::Bytes buf) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Stdio stdio(p, buf);
    auto f = co_await stdio.fopen("/p/gpfs1/cons", io::OpenMode::kWrite);
    co_await stdio.fwrite(f, sz, n);
    co_await stdio.fclose(f);
    auto g = co_await stdio.fopen("/p/gpfs1/cons", io::OpenMode::kRead);
    co_await stdio.fread(g, sz, n);
    co_await stdio.fclose(g);
  };
  sim.engine().spawn(prog(sim, app, size, count, buffer));
  sim.engine().run();

  const fs::Bytes total = static_cast<fs::Bytes>(size) * count;
  EXPECT_EQ(sim.pfs().counters().bytes_written, total);
  EXPECT_GE(sim.pfs().counters().bytes_read, total);  // readahead may over-read
  EXPECT_LE(sim.pfs().counters().bytes_read, total + 2 * buffer);
  EXPECT_EQ(sim.pfs().ns({0, 0}).inode(0).size, total);

  EXPECT_EQ(testutil::count_ops(sim.tracer(),
                                [](const trace::Record& r) {
                                  return r.iface == trace::Iface::kStdio &&
                                         r.op == trace::Op::kWrite;
                                }),
            count);
  EXPECT_EQ(testutil::count_ops(sim.tracer(),
                                [](const trace::Record& r) {
                                  return r.iface == trace::Iface::kStdio &&
                                         r.op == trace::Op::kRead;
                                }),
            count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StdioConservation,
    ::testing::Values(
        StdioCase{64, 1000, 4096},          // tiny ops, default buffer
        StdioCase{100, 333, 4096},          // non-dividing sizes
        StdioCase{4096, 64, 4096},          // op == buffer
        StdioCase{5000, 50, 4096},          // op > buffer (direct path)
        StdioCase{1 << 20, 4, 4096},        // large direct
        StdioCase{64, 1000, 1 << 20},       // huge buffer
        StdioCase{1, 4096, 512},            // byte-at-a-time
        StdioCase{7777, 13, 65536}));       // odd everything

// ---------------------------------------------------------------------------
// POSIX coalescing: a (size, count) batch behaves like count sequential ops.
// ---------------------------------------------------------------------------
using PosixCase = std::tuple<std::size_t, std::uint32_t>;

class PosixCoalescing : public ::testing::TestWithParam<PosixCase> {};

TEST_P(PosixCoalescing, InodeSizeAndCountersMatch) {
  const auto [size, count] = GetParam();
  Simulation sim(cluster::tiny(2));
  const auto app = sim.tracer().register_app("t");
  auto prog = [](Simulation& s, std::uint16_t a, fs::Bytes sz,
                 std::uint32_t n) -> Task<void> {
    Proc p(s, a, 0, 0);
    io::Posix posix(p);
    auto f = co_await posix.open("/p/gpfs1/coal", io::OpenMode::kWrite);
    co_await posix.write(f, sz, n);
    EXPECT_EQ(f.offset, sz * n);
    co_await posix.close(f);
  };
  sim.engine().spawn(prog(sim, app, size, count));
  sim.engine().run();
  EXPECT_EQ(sim.pfs().counters().bytes_written,
            static_cast<fs::Bytes>(size) * count);
  EXPECT_EQ(sim.pfs().counters().data_ops, count);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PosixCoalescing,
                         ::testing::Combine(::testing::Values(1, 4096,
                                                              1 << 20),
                                            ::testing::Values(1, 7, 256)));

// ---------------------------------------------------------------------------
// Trace invariants on randomized workloads: time monotonicity per rank,
// tend >= tstart, phases partition the records, histograms count data ops.
// ---------------------------------------------------------------------------
class RandomWorkloadInvariants : public ::testing::TestWithParam<int> {};

Task<void> random_rank(Simulation& s, std::uint16_t a, int rank, int seed) {
  Proc p(s, a, rank, rank % s.spec().nodes);
  io::Posix posix(p);
  util::Rng rng = util::Rng(static_cast<std::uint64_t>(seed)).fork(
      static_cast<std::uint64_t>(rank));
  const std::string path = "/p/gpfs1/rand_" + std::to_string(rank);
  auto f = co_await posix.open(path, io::OpenMode::kWrite);
  fs::Bytes written = 0;
  for (int i = 0; i < 12; ++i) {
    const auto sz = static_cast<fs::Bytes>(1 + rng.below(256 * 1024));
    const auto n = static_cast<std::uint32_t>(1 + rng.below(16));
    co_await posix.write(f, sz, n);
    written += sz * n;
    if (rng.below(3) == 0) co_await p.compute(sim::seconds(rng.uniform(0, 3)));
  }
  co_await posix.close(f);
  auto g = co_await posix.open(path, io::OpenMode::kRead);
  co_await posix.read(g, written / 4 + 1, 2);
  co_await posix.close(g);
}

TEST_P(RandomWorkloadInvariants, HoldForSeed) {
  const int seed = GetParam();
  Simulation sim(cluster::tiny(2));
  const auto app = sim.tracer().register_app("rand");
  for (int r = 0; r < 6; ++r) {
    sim.engine().spawn(random_rank(sim, app, r, seed));
  }
  sim.engine().run();

  // Per-rank monotonic non-overlapping ops; globally tend >= tstart.
  std::map<std::int32_t, sim::Time> last_end;
  for (const auto& rec : sim.tracer().records()) {
    EXPECT_GE(rec.tend, rec.tstart);
    if (trace::is_io(rec.op)) {
      EXPECT_GE(rec.tstart, last_end[rec.rank]);
      last_end[rec.rank] = rec.tend;
    }
  }

  analysis::Analyzer analyzer;
  auto profile = analyzer.analyze(sim.tracer());

  // Phases partition all I/O ops of the app.
  std::uint64_t phase_ops = 0;
  for (const auto& ph : profile.phases) phase_ops += ph.ops.total_ops();
  EXPECT_EQ(phase_ops, profile.totals.total_ops());

  // Histogram counts match data op counts.
  EXPECT_EQ(profile.read_hist.total_count(), profile.totals.read_ops);
  EXPECT_EQ(profile.write_hist.total_count(), profile.totals.write_ops);
  EXPECT_EQ(profile.read_hist.total_bytes(), profile.totals.read_bytes);
  EXPECT_EQ(profile.write_hist.total_bytes(), profile.totals.write_bytes);

  // Filesystem counters agree with the trace totals.
  EXPECT_EQ(sim.pfs().counters().bytes_written, profile.totals.write_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------------
// SharedLink fair-share bounds: with N identical concurrent transfers, the
// completion time is within [bytes/capacity, N*bytes/capacity] and the link
// moves every byte.
// ---------------------------------------------------------------------------
class LinkFairness : public ::testing::TestWithParam<int> {};

TEST_P(LinkFairness, AggregateBandwidthBounded) {
  const int streams = GetParam();
  sim::Engine eng;
  sim::SharedLink::Config cfg;
  cfg.capacity_bps = 10e9;
  cfg.per_stream_bps = 10e9;
  cfg.max_streams = 1024;
  cfg.latency = 0;
  sim::SharedLink link(eng, cfg);
  const util::Bytes each = 100 * util::kMiB;
  auto xfer = [](sim::SharedLink& l, util::Bytes n) -> Task<void> {
    co_await l.transfer(n);
  };
  for (int i = 0; i < streams; ++i) eng.spawn(xfer(link, each));
  eng.run();
  const double total =
      static_cast<double>(each) * static_cast<double>(streams);
  const double t = sim::to_seconds(eng.now());
  EXPECT_GE(t, total / cfg.capacity_bps * 0.99);
  // Snapshot fair-share can serialize pessimally but never worse than
  // strictly sequential.
  EXPECT_LE(t, total / cfg.capacity_bps * streams + 1e-6);
  EXPECT_EQ(link.bytes_moved(), each * static_cast<util::Bytes>(streams));
  EXPECT_EQ(link.transfers_completed(),
            static_cast<std::uint64_t>(streams));
}

INSTANTIATE_TEST_SUITE_P(Streams, LinkFairness,
                         ::testing::Values(1, 2, 4, 16, 64, 200));

// ---------------------------------------------------------------------------
// Determinism: identical seeds give bit-identical engine traces.
// ---------------------------------------------------------------------------
class Determinism : public ::testing::TestWithParam<int> {};

TEST_P(Determinism, SameSeedSameTrace) {
  auto run_once = [](int seed) {
    Simulation sim(cluster::tiny(2));
    const auto app = sim.tracer().register_app("rand");
    for (int r = 0; r < 4; ++r) {
      sim.engine().spawn(random_rank(sim, app, r, seed));
    }
    sim.engine().run();
    std::vector<std::pair<sim::Time, sim::Time>> times;
    for (const auto& rec : sim.tracer().records()) {
      times.emplace_back(rec.tstart, rec.tend);
    }
    return std::make_pair(sim.engine().now(), times);
  };
  const auto a = run_once(GetParam());
  const auto b = run_once(GetParam());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace wasp
