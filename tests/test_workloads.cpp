// End-to-end workload tests at test scale: every exemplar runs to
// completion, produces a coherent profile, and its characterization matches
// the paper's qualitative fingerprint (interface, sharing mode, ops mix).
#include <gtest/gtest.h>

#include "workloads/registry.hpp"

namespace wasp::workloads {
namespace {

cluster::ClusterSpec test_cluster(int nodes = 4) {
  auto spec = cluster::lassen(nodes);
  spec.node.cpu_cores = 8;  // plenty for the scaled-down workloads
  return spec;
}

TEST(WorkloadRegistry, AllSixRunAtTestScale) {
  for (const auto& entry : paper_workloads()) {
    SCOPED_TRACE(entry.name);
    auto out = run(test_cluster(), entry.make_test());
    EXPECT_GT(out.job_seconds, 0.0);
    EXPECT_GT(out.profile.totals.total_ops(), 0u);
    EXPECT_GT(out.profile.totals.io_bytes(), 0u);
    EXPECT_FALSE(out.characterization.to_yaml().empty());
  }
}

TEST(Cm1, FingerprintMatchesPaper) {
  auto out = run(test_cluster(), make_cm1(Cm1Params::test()));
  const auto* app = out.profile.app_by_name("cm1");
  ASSERT_NE(app, nullptr);
  // POSIX interface, 16 procs at test scale.
  EXPECT_EQ(app->interface, trace::Iface::kPosix);
  EXPECT_EQ(app->num_procs, 16);
  // Reads dominate bytes (config reads from every rank vs rank-0 writes).
  EXPECT_GT(out.profile.totals.read_bytes, out.profile.totals.write_bytes);
  // Metadata ops dominate op counts (seeks between 4KB write regions).
  EXPECT_LT(out.profile.totals.data_op_fraction(), 0.55);
  // Both shared (config) and FPP (rank-0 outputs) files exist.
  EXPECT_GT(out.profile.shared_files, 0u);
  EXPECT_GT(out.profile.fpp_files, 0u);
  // Only rank 0 writes simulation output.
  for (const auto& f : out.profile.files) {
    if (f.path.find("/out/") != std::string::npos) {
      EXPECT_EQ(f.writer_ranks, 1u) << f.path;
    }
  }
}

TEST(Hacc, FingerprintMatchesPaper) {
  HaccParams P = HaccParams::test();
  auto out = run(test_cluster(2), make_hacc(P));
  const auto* app = out.profile.app_by_name("hacc-io");
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->interface, trace::Iface::kPosix);
  // Pure file-per-process: no shared files at all (Table I: 1280/0).
  EXPECT_EQ(out.profile.shared_files, 0u);
  EXPECT_EQ(out.profile.fpp_files, 8u);
  // Checkpoint is read back entirely: bytes read == bytes written.
  EXPECT_EQ(out.profile.totals.read_bytes, out.profile.totals.write_bytes);
  // I/O-dominated job (paper: 75%).
  EXPECT_GT(out.profile.io_time_fraction, 0.4);
}

TEST(Cosmoflow, FingerprintMatchesPaper) {
  auto out = run(test_cluster(2), make_cosmoflow(CosmoflowParams::test()));
  const auto* app = out.profile.app_by_name("cosmoflow");
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->interface, trace::Iface::kHdf5);
  // Every dataset file is shared (collective reads), none FPP (Table I).
  std::uint64_t shared_h5 = 0;
  for (const auto& f : out.profile.files) {
    if (f.path.find(".h5") != std::string::npos) {
      EXPECT_TRUE(f.shared()) << f.path;
      ++shared_h5;
    }
  }
  EXPECT_EQ(shared_h5, CosmoflowParams::test().files);
  // Metadata dominates both op counts and I/O time (paper: 98% / 98%).
  EXPECT_LT(out.profile.totals.data_op_fraction(), 0.5);
  EXPECT_GT(out.profile.totals.meta_time_fraction(), 0.5);
  // Reads dominate bytes massively (1.5TB reads vs 20MB checkpoints).
  EXPECT_GT(out.profile.totals.read_bytes,
            10 * out.profile.totals.write_bytes);
}

TEST(Cosmoflow, PreloadConfigReadsFromNodeLocal) {
  advisor::RunConfig cfg;
  cfg.preload_input_to_node_local = true;
  auto spec = test_cluster(2);
  runtime::Simulation sim(spec);
  auto out = run_with(sim, make_cosmoflow(CosmoflowParams::test()), cfg,
                      analysis::Analyzer::Options{});
  // The shm tier holds the dataset shard afterwards.
  EXPECT_GT(sim.node_local("shm").used_bytes(0), 0u);
  EXPECT_GT(sim.node_local("shm").counters().bytes_read, 0u);
}

TEST(Jag, FingerprintMatchesPaper) {
  auto out = run(test_cluster(2), make_jag(JagParams::test()));
  const auto* app = out.profile.app_by_name("jag-icf");
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->interface, trace::Iface::kStdio);
  // Single shared input file (Table I: 0 FPP / shared input).
  bool found_dataset = false;
  for (const auto& f : out.profile.files) {
    if (f.path.find("samples.npy") != std::string::npos) {
      found_dataset = true;
      EXPECT_TRUE(f.shared());
    }
  }
  EXPECT_TRUE(found_dataset);
  // ~70% metadata ops (two seeks per sample read).
  EXPECT_LT(out.profile.totals.data_op_fraction(), 0.45);
  // Two read phases: start (epoch 1) and end (validation) — at least two
  // phases detected for the app.
  int phases = 0;
  for (const auto& ph : out.profile.phases) {
    if (ph.app == app->app) ++phases;
  }
  EXPECT_GE(phases, 2);
}

TEST(MontageMpi, FingerprintMatchesPaper) {
  auto out = run(test_cluster(2), make_montage_mpi(MontageMpiParams::test()));
  // Five applications (Table III: # apps = 5).
  EXPECT_EQ(out.profile.apps.size(), 5u);
  // Data ops dominate (Table III: 99% data).
  EXPECT_GT(out.profile.totals.data_op_fraction(), 0.8);
  // The workflow has app-level data dependencies (producer/consumer files).
  EXPECT_FALSE(out.profile.app_edges.empty());
  // mAddMPI + mViewer carry the bulk of the I/O (paper: 98%).
  const auto* add = out.profile.app_by_name("mAddMPI");
  const auto* viewer = out.profile.app_by_name("mViewer");
  ASSERT_NE(add, nullptr);
  ASSERT_NE(viewer, nullptr);
  EXPECT_GT(add->ops.io_bytes() + viewer->ops.io_bytes(),
            out.profile.totals.io_bytes() / 2);
}

TEST(MontageMpi, ShmRedirectMovesIntermediatesOffPfs) {
  advisor::RunConfig cfg;
  cfg.intermediates_to_node_local = true;
  auto spec = test_cluster(2);
  runtime::Simulation sim(spec);
  auto out = run_with(sim, make_montage_mpi(MontageMpiParams::test()), cfg,
                      analysis::Analyzer::Options{});
  // Intermediates live on shm...
  EXPECT_GT(sim.node_local("shm").counters().bytes_written, 0u);
  // ...and no intermediate path appears on the PFS namespace.
  EXPECT_TRUE(sim.pfs().ns({0, 0}).list("/p/gpfs1/montage/tmp/").empty());
}

TEST(MontagePegasus, FingerprintMatchesPaper) {
  auto out =
      run(test_cluster(2), make_montage_pegasus(MontagePegasusParams::test()));
  // Eight kernels traced (mProject..mViewer).
  EXPECT_EQ(out.profile.apps.size(), 8u);
  // mDiff dominates read volume (paper: 60% of I/O by mDiff reads).
  const auto* diff = out.profile.app_by_name("mDiff");
  ASSERT_NE(diff, nullptr);
  for (const auto& a : out.profile.apps) {
    if (a.name != "mDiff") {
      EXPECT_GE(diff->ops.read_bytes, a.ops.read_bytes) << a.name;
    }
  }
  // Deep producer->consumer chain.
  EXPECT_GE(out.profile.app_edges.size(), 4u);
}

TEST(Workloads, DeterministicAcrossRuns) {
  auto a = run(test_cluster(2), make_hacc(HaccParams::test()));
  auto b = run(test_cluster(2), make_hacc(HaccParams::test()));
  EXPECT_EQ(a.job_seconds, b.job_seconds);
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.profile.totals.total_ops(), b.profile.totals.total_ops());
}

}  // namespace
}  // namespace wasp::workloads
