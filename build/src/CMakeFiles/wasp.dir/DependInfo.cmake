
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/rules.cpp" "src/CMakeFiles/wasp.dir/advisor/rules.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/advisor/rules.cpp.o.d"
  "/root/repo/src/analysis/analyzer.cpp" "src/CMakeFiles/wasp.dir/analysis/analyzer.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/analysis/analyzer.cpp.o.d"
  "/root/repo/src/analysis/column_store.cpp" "src/CMakeFiles/wasp.dir/analysis/column_store.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/analysis/column_store.cpp.o.d"
  "/root/repo/src/cluster/spec.cpp" "src/CMakeFiles/wasp.dir/cluster/spec.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/cluster/spec.cpp.o.d"
  "/root/repo/src/core/characterizer.cpp" "src/CMakeFiles/wasp.dir/core/characterizer.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/core/characterizer.cpp.o.d"
  "/root/repo/src/core/entities.cpp" "src/CMakeFiles/wasp.dir/core/entities.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/core/entities.cpp.o.d"
  "/root/repo/src/core/yaml_loader.cpp" "src/CMakeFiles/wasp.dir/core/yaml_loader.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/core/yaml_loader.cpp.o.d"
  "/root/repo/src/fs/burst_buffer.cpp" "src/CMakeFiles/wasp.dir/fs/burst_buffer.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/burst_buffer.cpp.o.d"
  "/root/repo/src/fs/mount_table.cpp" "src/CMakeFiles/wasp.dir/fs/mount_table.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/mount_table.cpp.o.d"
  "/root/repo/src/fs/namespace.cpp" "src/CMakeFiles/wasp.dir/fs/namespace.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/namespace.cpp.o.d"
  "/root/repo/src/fs/node_local.cpp" "src/CMakeFiles/wasp.dir/fs/node_local.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/node_local.cpp.o.d"
  "/root/repo/src/fs/pfs.cpp" "src/CMakeFiles/wasp.dir/fs/pfs.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/pfs.cpp.o.d"
  "/root/repo/src/fs/types.cpp" "src/CMakeFiles/wasp.dir/fs/types.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/fs/types.cpp.o.d"
  "/root/repo/src/io/compression.cpp" "src/CMakeFiles/wasp.dir/io/compression.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/compression.cpp.o.d"
  "/root/repo/src/io/hdf5.cpp" "src/CMakeFiles/wasp.dir/io/hdf5.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/hdf5.cpp.o.d"
  "/root/repo/src/io/mpiio.cpp" "src/CMakeFiles/wasp.dir/io/mpiio.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/mpiio.cpp.o.d"
  "/root/repo/src/io/posix.cpp" "src/CMakeFiles/wasp.dir/io/posix.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/posix.cpp.o.d"
  "/root/repo/src/io/stdio.cpp" "src/CMakeFiles/wasp.dir/io/stdio.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/stdio.cpp.o.d"
  "/root/repo/src/io/tiered_buffer.cpp" "src/CMakeFiles/wasp.dir/io/tiered_buffer.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/io/tiered_buffer.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/wasp.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/runtime/proc.cpp" "src/CMakeFiles/wasp.dir/runtime/proc.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/runtime/proc.cpp.o.d"
  "/root/repo/src/runtime/simulation.cpp" "src/CMakeFiles/wasp.dir/runtime/simulation.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/runtime/simulation.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/wasp.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/wasp.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/sim/link.cpp.o.d"
  "/root/repo/src/trace/log_io.cpp" "src/CMakeFiles/wasp.dir/trace/log_io.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/trace/log_io.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/wasp.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/wasp.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/trace/tracer.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/wasp.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/error.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/wasp.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/parse.cpp" "src/CMakeFiles/wasp.dir/util/parse.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/parse.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/wasp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/wasp.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/wasp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/wasp.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/units.cpp.o.d"
  "/root/repo/src/util/yaml.cpp" "src/CMakeFiles/wasp.dir/util/yaml.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/yaml.cpp.o.d"
  "/root/repo/src/util/yaml_reader.cpp" "src/CMakeFiles/wasp.dir/util/yaml_reader.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/util/yaml_reader.cpp.o.d"
  "/root/repo/src/workflow/dag.cpp" "src/CMakeFiles/wasp.dir/workflow/dag.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workflow/dag.cpp.o.d"
  "/root/repo/src/workloads/cm1.cpp" "src/CMakeFiles/wasp.dir/workloads/cm1.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/cm1.cpp.o.d"
  "/root/repo/src/workloads/cosmoflow.cpp" "src/CMakeFiles/wasp.dir/workloads/cosmoflow.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/cosmoflow.cpp.o.d"
  "/root/repo/src/workloads/hacc.cpp" "src/CMakeFiles/wasp.dir/workloads/hacc.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/hacc.cpp.o.d"
  "/root/repo/src/workloads/ior.cpp" "src/CMakeFiles/wasp.dir/workloads/ior.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/ior.cpp.o.d"
  "/root/repo/src/workloads/jag.cpp" "src/CMakeFiles/wasp.dir/workloads/jag.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/jag.cpp.o.d"
  "/root/repo/src/workloads/montage_mpi.cpp" "src/CMakeFiles/wasp.dir/workloads/montage_mpi.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/montage_mpi.cpp.o.d"
  "/root/repo/src/workloads/montage_pegasus.cpp" "src/CMakeFiles/wasp.dir/workloads/montage_pegasus.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/montage_pegasus.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/wasp.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/wasp.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
