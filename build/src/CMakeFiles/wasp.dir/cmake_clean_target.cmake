file(REMOVE_RECURSE
  "libwasp.a"
)
