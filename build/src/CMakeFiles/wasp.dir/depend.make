# Empty dependencies file for wasp.
# This may be replaced when dependencies are built.
