file(REMOVE_RECURSE
  "CMakeFiles/example_montage_workflow.dir/montage_workflow.cpp.o"
  "CMakeFiles/example_montage_workflow.dir/montage_workflow.cpp.o.d"
  "example_montage_workflow"
  "example_montage_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_montage_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
