# Empty dependencies file for example_montage_workflow.
# This may be replaced when dependencies are built.
