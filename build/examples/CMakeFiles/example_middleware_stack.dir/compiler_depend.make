# Empty compiler generated dependencies file for example_middleware_stack.
# This may be replaced when dependencies are built.
