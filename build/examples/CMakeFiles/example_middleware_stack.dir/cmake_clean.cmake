file(REMOVE_RECURSE
  "CMakeFiles/example_middleware_stack.dir/middleware_stack.cpp.o"
  "CMakeFiles/example_middleware_stack.dir/middleware_stack.cpp.o.d"
  "example_middleware_stack"
  "example_middleware_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_middleware_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
