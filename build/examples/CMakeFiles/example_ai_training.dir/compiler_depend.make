# Empty compiler generated dependencies file for example_ai_training.
# This may be replaced when dependencies are built.
