file(REMOVE_RECURSE
  "CMakeFiles/example_ai_training.dir/ai_training.cpp.o"
  "CMakeFiles/example_ai_training.dir/ai_training.cpp.o.d"
  "example_ai_training"
  "example_ai_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ai_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
