# Empty compiler generated dependencies file for wasp_advise.
# This may be replaced when dependencies are built.
