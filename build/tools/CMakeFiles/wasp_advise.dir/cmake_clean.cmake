file(REMOVE_RECURSE
  "CMakeFiles/wasp_advise.dir/wasp_advise.cpp.o"
  "CMakeFiles/wasp_advise.dir/wasp_advise.cpp.o.d"
  "wasp_advise"
  "wasp_advise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_advise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
