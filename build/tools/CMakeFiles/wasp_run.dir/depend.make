# Empty dependencies file for wasp_run.
# This may be replaced when dependencies are built.
