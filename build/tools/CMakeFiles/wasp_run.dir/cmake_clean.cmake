file(REMOVE_RECURSE
  "CMakeFiles/wasp_run.dir/wasp_run.cpp.o"
  "CMakeFiles/wasp_run.dir/wasp_run.cpp.o.d"
  "wasp_run"
  "wasp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
