file(REMOVE_RECURSE
  "CMakeFiles/wasp_analyze.dir/wasp_analyze.cpp.o"
  "CMakeFiles/wasp_analyze.dir/wasp_analyze.cpp.o.d"
  "wasp_analyze"
  "wasp_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasp_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
