# Empty dependencies file for wasp_analyze.
# This may be replaced when dependencies are built.
