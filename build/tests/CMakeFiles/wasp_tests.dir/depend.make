# Empty dependencies file for wasp_tests.
# This may be replaced when dependencies are built.
