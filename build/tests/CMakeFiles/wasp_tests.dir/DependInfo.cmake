
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_advisor.cpp" "tests/CMakeFiles/wasp_tests.dir/test_advisor.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_advisor.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/wasp_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_burst_buffer.cpp" "tests/CMakeFiles/wasp_tests.dir/test_burst_buffer.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_burst_buffer.cpp.o.d"
  "/root/repo/tests/test_characterizer.cpp" "tests/CMakeFiles/wasp_tests.dir/test_characterizer.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_characterizer.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/wasp_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_compression.cpp" "tests/CMakeFiles/wasp_tests.dir/test_compression.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_compression.cpp.o.d"
  "/root/repo/tests/test_fs.cpp" "tests/CMakeFiles/wasp_tests.dir/test_fs.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_fs.cpp.o.d"
  "/root/repo/tests/test_io_layers.cpp" "tests/CMakeFiles/wasp_tests.dir/test_io_layers.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_io_layers.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/wasp_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_offline_analysis.cpp" "tests/CMakeFiles/wasp_tests.dir/test_offline_analysis.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_offline_analysis.cpp.o.d"
  "/root/repo/tests/test_paper_scale.cpp" "tests/CMakeFiles/wasp_tests.dir/test_paper_scale.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_paper_scale.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/wasp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/wasp_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sim_extra.cpp" "tests/CMakeFiles/wasp_tests.dir/test_sim_extra.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_sim_extra.cpp.o.d"
  "/root/repo/tests/test_tiered_buffer.cpp" "tests/CMakeFiles/wasp_tests.dir/test_tiered_buffer.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_tiered_buffer.cpp.o.d"
  "/root/repo/tests/test_trace_log.cpp" "tests/CMakeFiles/wasp_tests.dir/test_trace_log.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_trace_log.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/wasp_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workflow.cpp" "tests/CMakeFiles/wasp_tests.dir/test_workflow.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_workflow.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/wasp_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_yaml_loader.cpp" "tests/CMakeFiles/wasp_tests.dir/test_yaml_loader.cpp.o" "gcc" "tests/CMakeFiles/wasp_tests.dir/test_yaml_loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wasp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
