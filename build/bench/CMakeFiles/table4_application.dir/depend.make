# Empty dependencies file for table4_application.
# This may be replaced when dependencies are built.
