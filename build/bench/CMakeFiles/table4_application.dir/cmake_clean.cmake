file(REMOVE_RECURSE
  "CMakeFiles/table4_application.dir/table4_application.cpp.o"
  "CMakeFiles/table4_application.dir/table4_application.cpp.o.d"
  "table4_application"
  "table4_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
