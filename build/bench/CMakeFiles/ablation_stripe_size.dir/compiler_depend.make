# Empty compiler generated dependencies file for ablation_stripe_size.
# This may be replaced when dependencies are built.
