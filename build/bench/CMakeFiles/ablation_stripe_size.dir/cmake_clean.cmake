file(REMOVE_RECURSE
  "CMakeFiles/ablation_stripe_size.dir/ablation_stripe_size.cpp.o"
  "CMakeFiles/ablation_stripe_size.dir/ablation_stripe_size.cpp.o.d"
  "ablation_stripe_size"
  "ablation_stripe_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stripe_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
