# Empty dependencies file for table8_node_local.
# This may be replaced when dependencies are built.
