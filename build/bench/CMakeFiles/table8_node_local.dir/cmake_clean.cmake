file(REMOVE_RECURSE
  "CMakeFiles/table8_node_local.dir/table8_node_local.cpp.o"
  "CMakeFiles/table8_node_local.dir/table8_node_local.cpp.o.d"
  "table8_node_local"
  "table8_node_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_node_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
