file(REMOVE_RECURSE
  "CMakeFiles/fig3_cosmoflow.dir/fig3_cosmoflow.cpp.o"
  "CMakeFiles/fig3_cosmoflow.dir/fig3_cosmoflow.cpp.o.d"
  "fig3_cosmoflow"
  "fig3_cosmoflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cosmoflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
