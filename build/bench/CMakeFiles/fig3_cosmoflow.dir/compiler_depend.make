# Empty compiler generated dependencies file for fig3_cosmoflow.
# This may be replaced when dependencies are built.
