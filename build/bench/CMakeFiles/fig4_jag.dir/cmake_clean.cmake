file(REMOVE_RECURSE
  "CMakeFiles/fig4_jag.dir/fig4_jag.cpp.o"
  "CMakeFiles/fig4_jag.dir/fig4_jag.cpp.o.d"
  "fig4_jag"
  "fig4_jag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_jag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
