# Empty compiler generated dependencies file for fig4_jag.
# This may be replaced when dependencies are built.
