file(REMOVE_RECURSE
  "CMakeFiles/table3_workflow.dir/table3_workflow.cpp.o"
  "CMakeFiles/table3_workflow.dir/table3_workflow.cpp.o.d"
  "table3_workflow"
  "table3_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
