# Empty dependencies file for table3_workflow.
# This may be replaced when dependencies are built.
