# Empty dependencies file for micro_fs_io.
# This may be replaced when dependencies are built.
