file(REMOVE_RECURSE
  "CMakeFiles/micro_fs_io.dir/micro_fs_io.cpp.o"
  "CMakeFiles/micro_fs_io.dir/micro_fs_io.cpp.o.d"
  "micro_fs_io"
  "micro_fs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
