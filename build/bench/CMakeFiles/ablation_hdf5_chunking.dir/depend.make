# Empty dependencies file for ablation_hdf5_chunking.
# This may be replaced when dependencies are built.
