file(REMOVE_RECURSE
  "CMakeFiles/ablation_hdf5_chunking.dir/ablation_hdf5_chunking.cpp.o"
  "CMakeFiles/ablation_hdf5_chunking.dir/ablation_hdf5_chunking.cpp.o.d"
  "ablation_hdf5_chunking"
  "ablation_hdf5_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hdf5_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
