file(REMOVE_RECURSE
  "CMakeFiles/fig7_cosmoflow_opt.dir/fig7_cosmoflow_opt.cpp.o"
  "CMakeFiles/fig7_cosmoflow_opt.dir/fig7_cosmoflow_opt.cpp.o.d"
  "fig7_cosmoflow_opt"
  "fig7_cosmoflow_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cosmoflow_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
