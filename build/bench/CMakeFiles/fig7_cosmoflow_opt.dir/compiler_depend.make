# Empty compiler generated dependencies file for fig7_cosmoflow_opt.
# This may be replaced when dependencies are built.
