# Empty compiler generated dependencies file for table7_middleware.
# This may be replaced when dependencies are built.
