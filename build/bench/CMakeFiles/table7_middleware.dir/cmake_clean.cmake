file(REMOVE_RECURSE
  "CMakeFiles/table7_middleware.dir/table7_middleware.cpp.o"
  "CMakeFiles/table7_middleware.dir/table7_middleware.cpp.o.d"
  "table7_middleware"
  "table7_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
