file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_checkpoint.dir/ablation_async_checkpoint.cpp.o"
  "CMakeFiles/ablation_async_checkpoint.dir/ablation_async_checkpoint.cpp.o.d"
  "ablation_async_checkpoint"
  "ablation_async_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
