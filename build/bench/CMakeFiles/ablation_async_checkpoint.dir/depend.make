# Empty dependencies file for ablation_async_checkpoint.
# This may be replaced when dependencies are built.
