file(REMOVE_RECURSE
  "CMakeFiles/ablation_collective_io.dir/ablation_collective_io.cpp.o"
  "CMakeFiles/ablation_collective_io.dir/ablation_collective_io.cpp.o.d"
  "ablation_collective_io"
  "ablation_collective_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
