# Empty compiler generated dependencies file for micro_analyzer.
# This may be replaced when dependencies are built.
