file(REMOVE_RECURSE
  "CMakeFiles/micro_analyzer.dir/micro_analyzer.cpp.o"
  "CMakeFiles/micro_analyzer.dir/micro_analyzer.cpp.o.d"
  "micro_analyzer"
  "micro_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
