file(REMOVE_RECURSE
  "CMakeFiles/ablation_tiered_buffer.dir/ablation_tiered_buffer.cpp.o"
  "CMakeFiles/ablation_tiered_buffer.dir/ablation_tiered_buffer.cpp.o.d"
  "ablation_tiered_buffer"
  "ablation_tiered_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiered_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
