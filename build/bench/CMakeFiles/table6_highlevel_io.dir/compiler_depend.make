# Empty compiler generated dependencies file for table6_highlevel_io.
# This may be replaced when dependencies are built.
