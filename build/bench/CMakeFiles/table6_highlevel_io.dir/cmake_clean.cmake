file(REMOVE_RECURSE
  "CMakeFiles/table6_highlevel_io.dir/table6_highlevel_io.cpp.o"
  "CMakeFiles/table6_highlevel_io.dir/table6_highlevel_io.cpp.o.d"
  "table6_highlevel_io"
  "table6_highlevel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_highlevel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
