# Empty dependencies file for table2_job_config.
# This may be replaced when dependencies are built.
