file(REMOVE_RECURSE
  "CMakeFiles/table11_file.dir/table11_file.cpp.o"
  "CMakeFiles/table11_file.dir/table11_file.cpp.o.d"
  "table11_file"
  "table11_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
