# Empty compiler generated dependencies file for table11_file.
# This may be replaced when dependencies are built.
