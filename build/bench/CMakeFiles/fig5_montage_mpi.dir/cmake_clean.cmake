file(REMOVE_RECURSE
  "CMakeFiles/fig5_montage_mpi.dir/fig5_montage_mpi.cpp.o"
  "CMakeFiles/fig5_montage_mpi.dir/fig5_montage_mpi.cpp.o.d"
  "fig5_montage_mpi"
  "fig5_montage_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_montage_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
