# Empty dependencies file for fig5_montage_mpi.
# This may be replaced when dependencies are built.
