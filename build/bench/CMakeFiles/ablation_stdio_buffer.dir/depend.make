# Empty dependencies file for ablation_stdio_buffer.
# This may be replaced when dependencies are built.
