file(REMOVE_RECURSE
  "CMakeFiles/ablation_stdio_buffer.dir/ablation_stdio_buffer.cpp.o"
  "CMakeFiles/ablation_stdio_buffer.dir/ablation_stdio_buffer.cpp.o.d"
  "ablation_stdio_buffer"
  "ablation_stdio_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stdio_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
