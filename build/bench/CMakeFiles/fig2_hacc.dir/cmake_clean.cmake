file(REMOVE_RECURSE
  "CMakeFiles/fig2_hacc.dir/fig2_hacc.cpp.o"
  "CMakeFiles/fig2_hacc.dir/fig2_hacc.cpp.o.d"
  "fig2_hacc"
  "fig2_hacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
