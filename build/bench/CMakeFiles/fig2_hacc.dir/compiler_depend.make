# Empty compiler generated dependencies file for fig2_hacc.
# This may be replaced when dependencies are built.
