# Empty dependencies file for table9_shared_storage.
# This may be replaced when dependencies are built.
