file(REMOVE_RECURSE
  "CMakeFiles/table9_shared_storage.dir/table9_shared_storage.cpp.o"
  "CMakeFiles/table9_shared_storage.dir/table9_shared_storage.cpp.o.d"
  "table9_shared_storage"
  "table9_shared_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_shared_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
