# Empty dependencies file for ablation_client_cache.
# This may be replaced when dependencies are built.
