file(REMOVE_RECURSE
  "CMakeFiles/ablation_client_cache.dir/ablation_client_cache.cpp.o"
  "CMakeFiles/ablation_client_cache.dir/ablation_client_cache.cpp.o.d"
  "ablation_client_cache"
  "ablation_client_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_client_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
