# Empty compiler generated dependencies file for table5_io_phase.
# This may be replaced when dependencies are built.
