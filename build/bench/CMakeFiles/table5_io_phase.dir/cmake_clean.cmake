file(REMOVE_RECURSE
  "CMakeFiles/table5_io_phase.dir/table5_io_phase.cpp.o"
  "CMakeFiles/table5_io_phase.dir/table5_io_phase.cpp.o.d"
  "table5_io_phase"
  "table5_io_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_io_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
