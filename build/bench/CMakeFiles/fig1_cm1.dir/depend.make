# Empty dependencies file for fig1_cm1.
# This may be replaced when dependencies are built.
