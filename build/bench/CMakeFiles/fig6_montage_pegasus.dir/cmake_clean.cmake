file(REMOVE_RECURSE
  "CMakeFiles/fig6_montage_pegasus.dir/fig6_montage_pegasus.cpp.o"
  "CMakeFiles/fig6_montage_pegasus.dir/fig6_montage_pegasus.cpp.o.d"
  "fig6_montage_pegasus"
  "fig6_montage_pegasus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_montage_pegasus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
