# Empty compiler generated dependencies file for fig6_montage_pegasus.
# This may be replaced when dependencies are built.
