# Empty compiler generated dependencies file for table10_dataset.
# This may be replaced when dependencies are built.
