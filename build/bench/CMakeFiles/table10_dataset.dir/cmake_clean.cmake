file(REMOVE_RECURSE
  "CMakeFiles/table10_dataset.dir/table10_dataset.cpp.o"
  "CMakeFiles/table10_dataset.dir/table10_dataset.cpp.o.d"
  "table10_dataset"
  "table10_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
