file(REMOVE_RECURSE
  "CMakeFiles/fig8_montage_opt.dir/fig8_montage_opt.cpp.o"
  "CMakeFiles/fig8_montage_opt.dir/fig8_montage_opt.cpp.o.d"
  "fig8_montage_opt"
  "fig8_montage_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_montage_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
