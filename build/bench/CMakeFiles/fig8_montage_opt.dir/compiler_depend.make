# Empty compiler generated dependencies file for fig8_montage_opt.
# This may be replaced when dependencies are built.
